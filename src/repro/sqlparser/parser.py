"""Recursive-descent SQL parser.

Produces :mod:`repro.sqlparser.ast` nodes from SQL text.  The grammar covers
the SELECT dialect needed for TPC-H-style analytics (see the AST module
docstring for the feature list).  Errors raise
:class:`repro.errors.SQLSyntaxError` with the offending line number.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.lexer import Token, TokenKind, tokenize

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_INTERVAL_UNITS = {"day", "month", "year", "week"}


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- cursor helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        target = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[target]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def error(self, message: str) -> SQLSyntaxError:
        token = self.current
        found = token.text or "<end of input>"
        return SQLSyntaxError(f"{message}, found {found!r}", position=token.position,
                              line=token.line)

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.current.is_keyword(name):
            raise self.error(f"expected keyword {name.upper()}")
        return self.advance()

    def accept_punctuation(self, value: str) -> bool:
        token = self.current
        if token.kind is TokenKind.PUNCTUATION and token.value == value:
            self.advance()
            return True
        return False

    def expect_punctuation(self, value: str) -> Token:
        token = self.current
        if token.kind is not TokenKind.PUNCTUATION or token.value != value:
            raise self.error(f"expected {value!r}")
        return self.advance()

    def accept_operator(self, *values: str) -> Token | None:
        token = self.current
        if token.kind is TokenKind.OPERATOR and token.value in values:
            return self.advance()
        return None

    # -- entry points -----------------------------------------------------------

    def parse(self) -> ast.Select:
        select = self.parse_select()
        self.accept_punctuation(";")
        if self.current.kind is not TokenKind.EOF:
            raise self.error("unexpected trailing input")
        return select

    # -- SELECT block -------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("select")
        select = ast.Select()
        if self.accept_keyword("distinct"):
            select.distinct = True
        else:
            self.accept_keyword("all")

        select.items = self._parse_select_list()

        if self.accept_keyword("from"):
            select.from_items = self._parse_from_list()
        if self.accept_keyword("where"):
            select.where = self.parse_expression()
        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            select.group_by = self._parse_expression_list()
        if self.accept_keyword("having"):
            select.having = self.parse_expression()
        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            select.order_by = self._parse_order_list()
        if self.accept_keyword("limit"):
            select.limit = self._parse_integer("LIMIT")
            if self.accept_keyword("offset"):
                select.offset = self._parse_integer("OFFSET")
        elif self.accept_keyword("offset"):
            select.offset = self._parse_integer("OFFSET")
            self.accept_keyword("rows")
            if self.accept_keyword("fetch"):
                self.accept_keyword("first")
                select.limit = self._parse_integer("FETCH FIRST")
                self.accept_keyword("rows")
                self.accept_keyword("row")
                self.expect_keyword("only")
        elif self.accept_keyword("fetch"):
            self.accept_keyword("first")
            select.limit = self._parse_integer("FETCH FIRST")
            self.accept_keyword("rows")
            self.accept_keyword("row")
            self.expect_keyword("only")
        return select

    def _parse_integer(self, clause: str) -> int:
        token = self.current
        if token.kind is not TokenKind.NUMBER:
            raise self.error(f"expected an integer after {clause}")
        self.advance()
        try:
            return int(token.value)
        except ValueError:
            raise SQLSyntaxError(f"{clause} requires an integer, got {token.text!r}",
                                 position=token.position, line=token.line) from None

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punctuation(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self.current.kind is TokenKind.OPERATOR and self.current.value == "*":
            self.advance()
            return ast.SelectItem(expression=ast.Star())
        expression = self.parse_expression()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self._expect_name("alias")
        elif self.current.kind is TokenKind.IDENTIFIER:
            alias = self.advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _expect_name(self, what: str) -> str:
        token = self.current
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            self.advance()
            return token.text if token.kind is TokenKind.IDENTIFIER else token.value
        raise self.error(f"expected {what}")

    # -- FROM clause --------------------------------------------------------------

    def _parse_from_list(self) -> list[ast.TableExpression]:
        items = [self._parse_joined_table()]
        while self.accept_punctuation(","):
            items.append(self._parse_joined_table())
        return items

    def _parse_joined_table(self) -> ast.TableExpression:
        left = self._parse_table_primary()
        while True:
            kind: str | None = None
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                kind = "cross"
            elif self.current.is_keyword("inner", "left", "right", "full", "join"):
                if self.accept_keyword("inner"):
                    kind = "inner"
                elif self.accept_keyword("left"):
                    kind = "left"
                    self.accept_keyword("outer")
                elif self.accept_keyword("right"):
                    kind = "right"
                    self.accept_keyword("outer")
                elif self.accept_keyword("full"):
                    kind = "full"
                    self.accept_keyword("outer")
                else:
                    kind = "inner"
                self.expect_keyword("join")
            else:
                return left
            right = self._parse_table_primary()
            condition: ast.Expression | None = None
            if kind != "cross":
                self.expect_keyword("on")
                condition = self.parse_expression()
            left = ast.Join(left=left, right=right, kind=kind, condition=condition)

    def _parse_table_primary(self) -> ast.TableExpression:
        if self.accept_punctuation("("):
            if self.current.is_keyword("select"):
                subquery = self.parse_select()
                self.expect_punctuation(")")
                self.accept_keyword("as")
                alias = self._expect_name("derived-table alias")
                return ast.SubqueryRef(subquery=subquery, alias=alias)
            table = self._parse_joined_table()
            self.expect_punctuation(")")
            return table
        name = self._expect_name("table name")
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self._expect_name("alias")
        elif self.current.kind is TokenKind.IDENTIFIER:
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- ORDER BY -------------------------------------------------------------------

    def _parse_order_list(self) -> list[ast.OrderItem]:
        items = [self._parse_order_item()]
        while self.accept_punctuation(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        if self.accept_keyword("nulls"):
            if not (self.accept_keyword("first") or self.accept_keyword("last")):
                raise self.error("expected FIRST or LAST after NULLS")
        return ast.OrderItem(expression=expression, descending=descending)

    def _parse_expression_list(self) -> list[ast.Expression]:
        items = [self.parse_expression()]
        while self.accept_punctuation(","):
            items.append(self.parse_expression())
        return items

    # -- expressions ------------------------------------------------------------------
    #
    # precedence (loosest to tightest):
    #   OR, AND, NOT, comparison / IN / LIKE / BETWEEN / IS, additive,
    #   multiplicative, unary, primary

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        operands = [self._parse_and()]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(operator="or", operands=operands)

    def _parse_and(self) -> ast.Expression:
        operands = [self._parse_not()]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(operator="and", operands=operands)

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp(operator="not", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_punctuation("(")
            subquery = self.parse_select()
            self.expect_punctuation(")")
            return ast.Exists(subquery=subquery)

        left = self._parse_additive()

        negated = False
        if self.current.is_keyword("not") and self.peek().is_keyword("in", "like", "between"):
            self.advance()
            negated = True

        if self.accept_keyword("in"):
            return self._parse_in(left, negated)
        if self.accept_keyword("like"):
            pattern = self._parse_additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self.accept_keyword("is"):
            is_negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return ast.IsNull(operand=left, negated=is_negated)

        operator_token = self.accept_operator(*_COMPARISON_OPERATORS)
        if operator_token is not None:
            operator = "<>" if operator_token.value == "!=" else operator_token.value
            quantifier: str | None = None
            if self.current.is_keyword("any", "some", "all"):
                quantifier = "any" if self.advance().value in ("any", "some") else "all"
                self.expect_punctuation("(")
                subquery = self.parse_select()
                self.expect_punctuation(")")
                return ast.Comparison(operator=operator, left=left,
                                      right=ast.ScalarSubquery(subquery=subquery),
                                      quantifier=quantifier)
            right = self._parse_additive()
            return ast.Comparison(operator=operator, left=left, right=right)
        return left

    def _parse_in(self, left: ast.Expression, negated: bool) -> ast.Expression:
        self.expect_punctuation("(")
        if self.current.is_keyword("select"):
            subquery = self.parse_select()
            self.expect_punctuation(")")
            return ast.InSubquery(operand=left, subquery=subquery, negated=negated)
        items = [self._parse_additive()]
        while self.accept_punctuation(","):
            items.append(self._parse_additive())
        self.expect_punctuation(")")
        return ast.InList(operand=left, items=items, negated=negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_operator("+", "-", "||")
            if token is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator=token.value, left=left, right=right)

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if token is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(operator=token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Expression:
        token = self.accept_operator("-", "+")
        if token is not None:
            return ast.UnaryOp(operator=token.value, operand=self._parse_unary())
        return self._parse_primary()

    # -- primary expressions -------------------------------------------------------

    def _parse_primary(self) -> ast.Expression:
        token = self.current

        if token.kind is TokenKind.NUMBER:
            self.advance()
            value: object
            if any(marker in token.value for marker in (".", "e", "E")):
                value = float(token.value)
            else:
                value = int(token.value)
            return ast.Literal(value=value, type_name="number")

        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(value=token.value, type_name="string")

        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(value=None, type_name="null")
        if token.is_keyword("true", "false"):
            self.advance()
            return ast.Literal(value=token.value == "true", type_name="boolean")

        if token.is_keyword("date"):
            return self._parse_date_literal()
        if token.is_keyword("interval"):
            return self._parse_interval_literal()
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("cast"):
            return self._parse_cast()
        if token.is_keyword("extract"):
            return self._parse_extract()
        if token.is_keyword("substring"):
            return self._parse_substring()

        if token.kind is TokenKind.PUNCTUATION and token.value == "(":
            self.advance()
            if self.current.is_keyword("select"):
                subquery = self.parse_select()
                self.expect_punctuation(")")
                return ast.ScalarSubquery(subquery=subquery)
            expression = self.parse_expression()
            self.expect_punctuation(")")
            return expression

        if token.kind is TokenKind.IDENTIFIER or token.is_keyword("left", "right"):
            return self._parse_identifier_expression()

        raise self.error("expected an expression")

    def _parse_date_literal(self) -> ast.Expression:
        self.expect_keyword("date")
        token = self.current
        if token.kind is not TokenKind.STRING:
            raise self.error("expected a string after DATE")
        self.advance()
        return ast.DateLiteral(value=token.value)

    def _parse_interval_literal(self) -> ast.Expression:
        self.expect_keyword("interval")
        token = self.current
        if token.kind is not TokenKind.STRING and token.kind is not TokenKind.NUMBER:
            raise self.error("expected a quantity after INTERVAL")
        self.advance()
        unit_token = self.current
        unit = unit_token.value.lower().rstrip("s")
        if unit not in _INTERVAL_UNITS:
            raise self.error("expected an interval unit (day, week, month, year)")
        self.advance()
        return ast.IntervalLiteral(value=int(str(token.value)), unit=unit)

    def _parse_case(self) -> ast.Expression:
        self.expect_keyword("case")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        default: ast.Expression | None = None
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            self.expect_keyword("then")
            result = self.parse_expression()
            branches.append((condition, result))
        if self.accept_keyword("else"):
            default = self.parse_expression()
        self.expect_keyword("end")
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        return ast.CaseWhen(branches=branches, default=default)

    def _parse_cast(self) -> ast.Expression:
        self.expect_keyword("cast")
        self.expect_punctuation("(")
        operand = self.parse_expression()
        self.expect_keyword("as")
        type_parts = [self._expect_name("type name")]
        while self.current.kind is TokenKind.IDENTIFIER:
            type_parts.append(self.advance().value)
        if self.accept_punctuation("("):
            while not self.accept_punctuation(")"):
                self.advance()
        self.expect_punctuation(")")
        return ast.Cast(operand=operand, type_name=" ".join(type_parts))

    def _parse_extract(self) -> ast.Expression:
        self.expect_keyword("extract")
        self.expect_punctuation("(")
        field_name = self._expect_name("EXTRACT field")
        self.expect_keyword("from")
        operand = self.parse_expression()
        self.expect_punctuation(")")
        return ast.Extract(field_name=field_name.lower(), operand=operand)

    def _parse_substring(self) -> ast.Expression:
        self.expect_keyword("substring")
        self.expect_punctuation("(")
        operand = self.parse_expression()
        start: ast.Expression
        length: ast.Expression | None = None
        if self.accept_keyword("from"):
            start = self.parse_expression()
            if self.accept_keyword("for"):
                length = self.parse_expression()
        else:
            self.expect_punctuation(",")
            start = self.parse_expression()
            if self.accept_punctuation(","):
                length = self.parse_expression()
        self.expect_punctuation(")")
        return ast.Substring(operand=operand, start=start, length=length)

    def _parse_identifier_expression(self) -> ast.Expression:
        name_token = self.advance()
        name = name_token.text if name_token.kind is TokenKind.IDENTIFIER else name_token.value

        # function call
        if self.current.kind is TokenKind.PUNCTUATION and self.current.value == "(":
            self.advance()
            distinct = bool(self.accept_keyword("distinct"))
            arguments: list[ast.Expression] = []
            if self.current.kind is TokenKind.OPERATOR and self.current.value == "*":
                self.advance()
                arguments.append(ast.Star())
            elif not (self.current.kind is TokenKind.PUNCTUATION and self.current.value == ")"):
                arguments.append(self.parse_expression())
                while self.accept_punctuation(","):
                    arguments.append(self.parse_expression())
            self.expect_punctuation(")")
            return ast.FunctionCall(name=name.lower(), arguments=arguments, distinct=distinct)

        # qualified column: table.column or table.*
        if self.current.kind is TokenKind.PUNCTUATION and self.current.value == ".":
            self.advance()
            if self.current.kind is TokenKind.OPERATOR and self.current.value == "*":
                self.advance()
                return ast.Star(table=name)
            column = self._expect_name("column name")
            return ast.ColumnRef(name=column, table=name)

        return ast.ColumnRef(name=name)


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def parse_select(sql: str) -> ast.Select:
    """Parse a single SELECT statement into its AST."""
    return _Parser(sql).parse()


def parse_sql(sql: str) -> list[ast.Select]:
    """Parse one or more ``;``-separated SELECT statements."""
    statements: list[ast.Select] = []
    for chunk in sql.split(";"):
        if chunk.strip():
            statements.append(parse_select(chunk))
    return statements
