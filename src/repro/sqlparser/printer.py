"""Render AST nodes back to SQL text.

The printer produces a canonical, single-line rendering used by

* the extractor, to turn AST fragments into grammar literals,
* the engines, when echoing queries in error messages and plans, and
* the differential analytics (Figure 4), which diffs canonical renderings.

Round-tripping is covered by property-based tests: ``parse(print(parse(q)))``
yields the same canonical text as ``print(parse(q))``.
"""

from __future__ import annotations

from repro.sqlparser import ast


def to_sql(node: ast.Node) -> str:
    """Render ``node`` (an expression, select item, or query block) to SQL."""
    return _render(node)


def _render(node: ast.Node) -> str:
    renderer = _RENDERERS.get(type(node))
    if renderer is None:
        raise TypeError(f"cannot render node of type {type(node).__name__}")
    return renderer(node)


# -- expression renderers ------------------------------------------------------


def _render_literal(node: ast.Literal) -> str:
    if node.value is None:
        return "NULL"
    if node.type_name == "boolean":
        return "TRUE" if node.value else "FALSE"
    if node.type_name == "string":
        escaped = str(node.value).replace("'", "''")
        return f"'{escaped}'"
    return str(node.value)


def _render_date(node: ast.DateLiteral) -> str:
    return f"date '{node.value}'"


def _render_interval(node: ast.IntervalLiteral) -> str:
    return f"interval '{node.value}' {node.unit}"


def _render_column(node: ast.ColumnRef) -> str:
    return node.qualified


def _render_star(node: ast.Star) -> str:
    return f"{node.table}.*" if node.table else "*"


def _render_unary(node: ast.UnaryOp) -> str:
    if node.operator == "not":
        return f"not ({_render(node.operand)})"
    return f"{node.operator}{_render_operand(node.operand)}"


def _render_binary(node: ast.BinaryOp) -> str:
    return f"{_render_operand(node.left)} {node.operator} {_render_operand(node.right)}"


def _render_operand(node: ast.Expression) -> str:
    """Parenthesise composite operands to keep the rendering unambiguous."""
    if isinstance(node, (ast.BinaryOp, ast.BoolOp, ast.Comparison, ast.CaseWhen)):
        return f"({_render(node)})"
    return _render(node)


def _render_bool(node: ast.BoolOp) -> str:
    connector = f" {node.operator} "
    return connector.join(_render_operand(operand) for operand in node.operands)


def _render_comparison(node: ast.Comparison) -> str:
    if node.quantifier:
        assert isinstance(node.right, ast.ScalarSubquery)
        return (f"{_render_operand(node.left)} {node.operator} {node.quantifier} "
                f"({_render(node.right.subquery)})")
    return f"{_render_operand(node.left)} {node.operator} {_render_operand(node.right)}"


def _render_isnull(node: ast.IsNull) -> str:
    suffix = "is not null" if node.negated else "is null"
    return f"{_render_operand(node.operand)} {suffix}"


def _render_between(node: ast.Between) -> str:
    keyword = "not between" if node.negated else "between"
    return (f"{_render_operand(node.operand)} {keyword} "
            f"{_render_operand(node.low)} and {_render_operand(node.high)}")


def _render_like(node: ast.Like) -> str:
    keyword = "not like" if node.negated else "like"
    return f"{_render_operand(node.operand)} {keyword} {_render_operand(node.pattern)}"


def _render_inlist(node: ast.InList) -> str:
    keyword = "not in" if node.negated else "in"
    items = ", ".join(_render(item) for item in node.items)
    return f"{_render_operand(node.operand)} {keyword} ({items})"


def _render_insubquery(node: ast.InSubquery) -> str:
    keyword = "not in" if node.negated else "in"
    return f"{_render_operand(node.operand)} {keyword} ({_render(node.subquery)})"


def _render_exists(node: ast.Exists) -> str:
    keyword = "not exists" if node.negated else "exists"
    return f"{keyword} ({_render(node.subquery)})"


def _render_scalar_subquery(node: ast.ScalarSubquery) -> str:
    return f"({_render(node.subquery)})"


def _render_function(node: ast.FunctionCall) -> str:
    prefix = "distinct " if node.distinct else ""
    arguments = ", ".join(_render(argument) for argument in node.arguments)
    return f"{node.name}({prefix}{arguments})"


def _render_cast(node: ast.Cast) -> str:
    return f"cast({_render(node.operand)} as {node.type_name})"


def _render_extract(node: ast.Extract) -> str:
    return f"extract({node.field_name} from {_render(node.operand)})"


def _render_substring(node: ast.Substring) -> str:
    rendered = f"substring({_render(node.operand)} from {_render(node.start)}"
    if node.length is not None:
        rendered += f" for {_render(node.length)}"
    return rendered + ")"


def _render_case(node: ast.CaseWhen) -> str:
    chunks = ["case"]
    for condition, result in node.branches:
        chunks.append(f"when {_render(condition)} then {_render(result)}")
    if node.default is not None:
        chunks.append(f"else {_render(node.default)}")
    chunks.append("end")
    return " ".join(chunks)


# -- relations -------------------------------------------------------------------


def _render_table(node: ast.TableRef) -> str:
    return f"{node.name} {node.alias}" if node.alias else node.name


def _render_subquery_ref(node: ast.SubqueryRef) -> str:
    return f"({_render(node.subquery)}) {node.alias}"


def _render_join(node: ast.Join) -> str:
    keyword = {"inner": "join", "left": "left join", "right": "right join",
               "full": "full join", "cross": "cross join"}[node.kind]
    rendered = f"{_render(node.left)} {keyword} {_render(node.right)}"
    if node.condition is not None:
        rendered += f" on {_render(node.condition)}"
    return rendered


def _render_select_item(node: ast.SelectItem) -> str:
    rendered = _render(node.expression)
    if node.alias:
        rendered += f" as {node.alias}"
    return rendered


def _render_order_item(node: ast.OrderItem) -> str:
    rendered = _render(node.expression)
    if node.descending:
        rendered += " desc"
    return rendered


def _render_select(node: ast.Select) -> str:
    chunks = ["select"]
    if node.distinct:
        chunks.append("distinct")
    chunks.append(", ".join(_render(item) for item in node.items))
    if node.from_items:
        chunks.append("from")
        chunks.append(", ".join(_render(item) for item in node.from_items))
    if node.where is not None:
        chunks.append("where")
        chunks.append(_render(node.where))
    if node.group_by:
        chunks.append("group by")
        chunks.append(", ".join(_render(expression) for expression in node.group_by))
    if node.having is not None:
        chunks.append("having")
        chunks.append(_render(node.having))
    if node.order_by:
        chunks.append("order by")
        chunks.append(", ".join(_render(item) for item in node.order_by))
    if node.limit is not None:
        chunks.append(f"limit {node.limit}")
    if node.offset is not None:
        chunks.append(f"offset {node.offset}")
    return " ".join(chunks)


_RENDERERS = {
    ast.Literal: _render_literal,
    ast.DateLiteral: _render_date,
    ast.IntervalLiteral: _render_interval,
    ast.ColumnRef: _render_column,
    ast.Star: _render_star,
    ast.UnaryOp: _render_unary,
    ast.BinaryOp: _render_binary,
    ast.BoolOp: _render_bool,
    ast.Comparison: _render_comparison,
    ast.IsNull: _render_isnull,
    ast.Between: _render_between,
    ast.Like: _render_like,
    ast.InList: _render_inlist,
    ast.InSubquery: _render_insubquery,
    ast.Exists: _render_exists,
    ast.ScalarSubquery: _render_scalar_subquery,
    ast.FunctionCall: _render_function,
    ast.Cast: _render_cast,
    ast.Extract: _render_extract,
    ast.Substring: _render_substring,
    ast.CaseWhen: _render_case,
    ast.TableRef: _render_table,
    ast.SubqueryRef: _render_subquery_ref,
    ast.Join: _render_join,
    ast.SelectItem: _render_select_item,
    ast.OrderItem: _render_order_item,
    ast.Select: _render_select,
}
