"""SQL front-end: lexer, parser, AST, printer and the query-to-grammar extractor.

The paper: "We have implemented a full fledged SQL parser that turns a single
query, called the baseline query, into a sqalpel grammar."  This subpackage is
that parser.  It serves two clients:

* the **extractor** (:mod:`repro.sqlparser.extract`), which splits a baseline
  query along projection-list elements, table expressions, sub-queries,
  and/or expressions, group-by and order-by terms and emits a SQALPEL grammar
  (Section 3.1 of the paper), and
* the **engine substrate** (:mod:`repro.engine`), which compiles the same AST
  into executable plans.
"""

from repro.sqlparser.lexer import Token, TokenKind, tokenize
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_select, parse_sql
from repro.sqlparser.printer import to_sql
from repro.sqlparser.extract import ExtractionOptions, extract_grammar

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "ast",
    "parse_select",
    "parse_sql",
    "to_sql",
    "ExtractionOptions",
    "extract_grammar",
]
