"""Platform entities.

Every entity is a plain dataclass with a ``to_dict`` / ``from_dict`` pair so
the sqlite store and the JSON API can exchange them without extra mapping
code.  Identifiers are integers assigned by the store.
"""

from __future__ import annotations

import enum
import time
from dataclasses import asdict, dataclass, field


class Visibility(str, enum.Enum):
    """Project visibility, mirroring the public/private split of Section 4.2."""

    PUBLIC = "public"
    PRIVATE = "private"


class TaskStatus(str, enum.Enum):
    """Lifecycle of one queued query execution.

    A task moves ``pending -> running`` when a contributor claims a lease on
    it, and from ``running`` either to ``done`` (a successful result arrived),
    back to ``pending`` (the result was an error, or the lease expired, and
    the retry budget is not exhausted), or to the terminal ``failed`` state
    once ``max_attempts`` leases have been burned.  ``failed`` doubles as the
    dead-letter queue -- :data:`DEAD_LETTER` is an alias for it -- so operators
    find every task that needs human attention under one status.  ``killed``
    is the owner-initiated terminal state.  ``expired`` is retained for
    databases written before leases retried automatically; the service no
    longer assigns it.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    DEAD_LETTER = "failed"  # alias: the terminal failed state is the dead-letter queue
    KILLED = "killed"
    EXPIRED = "expired"


@dataclass
class User:
    """A registered platform user.

    The paper: "A straightforward user administration is provided based on a
    unique nickname and a valid email to reach out to its owner.  Email
    addresses are never exposed in the interface."  ``contributor_key`` is the
    "separately supplied key to identify the source of the results without
    disclosing the contributor's identity".
    """

    nickname: str
    email: str
    id: int | None = None
    contributor_key: str = ""
    created_at: float = field(default_factory=time.time)

    def public_view(self) -> dict:
        """The user as shown in the interface: no email, no key."""
        return {"id": self.id, "nickname": self.nickname}

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "User":
        return cls(**payload)


@dataclass
class DBMSEntry:
    """One entry of the global DBMS catalog."""

    name: str
    version: str
    dialect: str = "generic"
    description: str = ""
    settings: dict = field(default_factory=dict)
    id: int | None = None

    def label(self) -> str:
        return f"{self.name}-{self.version}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "DBMSEntry":
        return cls(**payload)


@dataclass
class HostEntry:
    """One entry of the hardware platform catalog.

    The demo spans "platforms ranging from a Raspberry Pi up to Intel Xeon
    E5-4657L servers with 1TB RAM"; entries carry enough metadata to document
    the measurement context.
    """

    name: str
    cpu: str = ""
    memory_gb: float = 0.0
    os: str = ""
    description: str = ""
    id: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "HostEntry":
        return cls(**payload)


@dataclass
class Project:
    """A performance project: the unit of ownership, sharing and moderation."""

    name: str
    owner_id: int
    synopsis: str = ""
    visibility: Visibility = Visibility.PUBLIC
    attribution: str = ""
    contributor_ids: list[int] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)
    id: int | None = None

    def is_public(self) -> bool:
        return self.visibility is Visibility.PUBLIC

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["visibility"] = self.visibility.value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Project":
        payload = dict(payload)
        payload["visibility"] = Visibility(payload.get("visibility", "public"))
        return cls(**payload)


@dataclass
class Experiment:
    """One experiment of a project: a baseline query and its grammar/pool state."""

    project_id: int
    name: str
    baseline_sql: str
    grammar_text: str
    dbms_id: int | None = None
    host_id: int | None = None
    guidance: dict = field(default_factory=dict)
    template_limit: int = 100_000
    repeats: int = 5
    timeout_seconds: float = 60.0
    #: retry budget copied onto every task at enqueue time: how many leases a
    #: task may burn (execution errors or expired leases) before it is
    #: dead-lettered instead of re-queued.
    max_attempts: int = 3
    created_at: float = field(default_factory=time.time)
    id: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Experiment":
        return cls(**payload)


@dataclass
class Task:
    """One queued query execution: a pool query waiting for / undergoing a run.

    "Each query is ran against a single DBMS + host combination.  The
    execution status is tracked in a queue, which enables killing queries that
    got stuck or when the results of an experiment are not delivered within a
    specified timeout interval."
    """

    experiment_id: int
    query_sql: str
    query_key: str
    dbms_label: str
    host_name: str
    origin: str = "seed"
    parent_key: str | None = None
    size: int = 0
    status: str = TaskStatus.PENDING.value
    assigned_to: str | None = None
    assigned_at: float | None = None
    timeout_seconds: float = 60.0
    #: how many leases this task has burned so far.  Claiming a task
    #: increments the counter, so ``attempts`` also fences stale submissions:
    #: a result is only accepted for the lease (attempt number) it was
    #: measured under.
    attempts: int = 0
    #: retry budget (copied from the experiment at enqueue time).
    max_attempts: int = 3
    #: the most recent failure (execution error or lease-expiry note);
    #: preserved on the dead-lettered task for post-mortems.
    last_error: str | None = None
    #: the W3C trace id this task's whole journey is recorded under -- minted
    #: once (at enqueue, or lazily at first claim for tasks inserted directly
    #: into the store) and stable across retries, so driver- and server-side
    #: spans of every attempt stitch into one timeline.
    trace_id: str | None = None
    created_at: float = field(default_factory=time.time)
    id: int | None = None

    def lease_expired(self, now: float) -> bool:
        """Whether this task's lease has lapsed (only meaningful when running)."""
        return (self.status == TaskStatus.RUNNING.value
                and self.assigned_at is not None
                and now - self.assigned_at > self.timeout_seconds)

    def to_dict(self) -> dict:
        # shallow on purpose: every field is a scalar, and tasks are
        # serialised on every claim/sweep scan -- asdict's recursive
        # deep-copy machinery is measurable on that hot path.
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: dict) -> "Task":
        return cls(**payload)


@dataclass
class ResultRecord:
    """One contributed measurement for a task.

    "By default each experiment is run five times and the wall clock time for
    each step is reported. [...] An open-ended key-value list structure can be
    returned to keep system specific performance indicators for post
    inspection."
    """

    task_id: int
    experiment_id: int
    contributor_key: str
    dbms_label: str
    host_name: str
    query_sql: str
    times: list[float] = field(default_factory=list)
    error: str | None = None
    load_averages: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    hidden: bool = False
    #: client-generated key identifying one task execution.  A retried
    #: submission carrying the same key replays this record instead of
    #: inserting a duplicate (see ``PlatformService.submit_results``).
    idempotency_key: str | None = None
    created_at: float = field(default_factory=time.time)
    id: int | None = None

    @property
    def best(self) -> float | None:
        """Fastest of the repeated runs (None for failed runs)."""
        return min(self.times) if self.times else None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def to_dict(self) -> dict:
        # shallow on purpose: ``extras`` may carry dozens of shipped span
        # records, and every consumer JSON-encodes the payload immediately
        # (store row, HTTP response) -- asdict would deep-copy the whole
        # span list first, which dominated the submit path under profile.
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultRecord":
        return cls(**payload)


@dataclass
class Comment:
    """A registered user's comment on a project."""

    project_id: int
    user_id: int
    text: str
    created_at: float = field(default_factory=time.time)
    id: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Comment":
        return cls(**payload)
