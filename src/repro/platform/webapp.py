"""WSGI JSON API exposing the platform service.

The paper's GUI is a Flask/Bokeh web application; the reproduction exposes the
same operations as a JSON-over-HTTP API on the standard library's ``wsgiref``
server so the remote experiment driver can interact with a deployment exactly
the way ``sqalpel.py`` does: request a task from a project pool, execute it
locally and report the findings.

Endpoints (all JSON; the contributor key travels in the ``X-Sqalpel-Key``
header):

=======================  ======  ===========================================
path                     method  purpose
=======================  ======  ===========================================
``/api/ping``            GET     liveness probe / version
``/api/projects``        GET     projects visible to the caller
``/api/experiments``     GET     experiments of a project (``?project=<id>``)
``/api/task``            POST    assign the next pending task of an experiment
``/api/tasks``           POST    claim a batch of pending tasks (``count``)
``/api/result``          POST    submit the measurements for a task
``/api/results/batch``   POST    submit measurements for a batch of tasks
``/api/results``         GET     results of an experiment (``?experiment=<id>``)
``/api/queue``           GET     queue status of an experiment
``/api/metrics``         GET     service-level metrics snapshot
=======================  ======  ===========================================

The batch endpoints back the driver's :class:`repro.driver.runner.BatchRunner`
pipeline: one round trip claims N tasks and one round trip delivers N results.
"""

from __future__ import annotations

import json
import threading
import time
from socketserver import ThreadingMixIn
from typing import Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro import __version__
from repro.errors import AccessDenied, NotFound, PlatformError, ValidationError
from repro.obs import (
    JsonLogger,
    SpanContext,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    use_context,
)
from repro.platform.service import PlatformService

#: endpoints with their own latency histogram; anything else shares one
#: "unmatched" series so probing garbage paths cannot grow the registry
#: without bound.
_ENDPOINTS = frozenset((
    "/api/ping", "/api/projects", "/api/experiments", "/api/task",
    "/api/tasks", "/api/result", "/api/results/batch", "/api/results",
    "/api/queue", "/api/metrics",
))


def create_wsgi_app(service: PlatformService,
                    logger: JsonLogger | None = None) -> Callable:
    """Build the WSGI application closure over ``service``.

    The closure is also the telemetry middleware: every request opens a
    server span (continuing the caller's ``traceparent`` when one is
    sent), is timed into a per-endpoint latency histogram
    (``http.request_seconds.<path>``), and emits one structured
    ``http.request`` log record.  ``logger`` defaults to the service's
    logger (silent unless the service was given a sink).
    """
    log = (logger if logger is not None else service.log).bind("webapp")

    def application(environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        query = _parse_query(environ.get("QUERY_STRING", ""))
        key = environ.get("HTTP_X_SQALPEL_KEY", "")
        incoming = parse_traceparent(environ.get("HTTP_TRACEPARENT"))
        server_context = SpanContext(
            incoming.trace_id if incoming else new_trace_id(), new_span_id())
        started = time.time()
        try:
            with use_context(server_context):
                body = _read_body(environ)
                status, payload = _dispatch(service, method, path, query, key, body)
        except AccessDenied as exc:
            status, payload = "403 Forbidden", {"error": str(exc)}
        except NotFound as exc:
            status, payload = "404 Not Found", {"error": str(exc)}
        except ValidationError as exc:
            status, payload = "400 Bad Request", {"error": str(exc)}
        except PlatformError as exc:
            status, payload = "400 Bad Request", {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = "500 Internal Server Error", {"error": str(exc)}
        ended = time.time()
        endpoint = path if path in _ENDPOINTS else "unmatched"
        code = int(status.split(" ", 1)[0])
        service.metrics.histogram(f"http.request_seconds.{endpoint}") \
            .observe(ended - started)
        service.metrics.counter(f"http.responses.{code // 100}xx").inc()
        if service.spans.enabled:
            service.spans.record(
                "http", server_context.trace_id,
                span_id=server_context.span_id,
                parent_span_id=incoming.span_id if incoming else None,
                start=started, end=ended,
                method=method, endpoint=endpoint, status=code)
        log.log("info" if code < 500 else "error", "http.request",
                method=method, path=path, status=code,
                elapsed=ended - started,
                trace_id=server_context.trace_id,
                span_id=server_context.span_id)
        encoded = json.dumps(payload).encode("utf-8")
        start_response(status, [
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(encoded))),
        ])
        return [encoded]

    return application


def _parse_query(query_string: str) -> dict:
    from urllib.parse import parse_qs

    parsed = parse_qs(query_string)
    return {key: values[0] for key, values in parsed.items()}


def _read_body(environ) -> dict:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    if length <= 0:
        return {}
    raw = environ["wsgi.input"].read(length)
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # malformed JSON is the client's fault: 400, not a generic 500.
        raise ValidationError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ValidationError("request body must be a JSON object")
    return body


def _dispatch(service: PlatformService, method: str, path: str, query: dict,
              key: str, body: dict) -> tuple[str, dict | list]:
    viewer = service.store.user_by_key(key) if key else None

    if path == "/api/ping" and method == "GET":
        return "200 OK", {"status": "ok", "version": __version__}

    if path == "/api/metrics" and method == "GET":
        # service-level totals (tasks dispatched, results accepted, queue
        # timeouts); no auth needed -- the snapshot carries no query data.
        return "200 OK", service.metrics.snapshot()

    if path == "/api/projects" and method == "GET":
        projects = service.list_projects(viewer)
        return "200 OK", [project.to_dict() for project in projects]

    if path == "/api/experiments" and method == "GET":
        project = service.get_project(int(query["project"]), viewer)
        experiments = service.experiments(project, viewer)
        return "200 OK", [experiment.to_dict() for experiment in experiments]

    if path == "/api/queue" and method == "GET":
        experiment = service.store.experiment(int(query["experiment"]))
        service.get_project(experiment.project_id, viewer)
        return "200 OK", service.queue_status(experiment)

    if path == "/api/task" and method == "POST":
        contributor = service.authenticate(key)
        experiment = service.store.experiment(int(body["experiment"]))
        task = service.next_task(contributor, experiment,
                                 dbms_label=body.get("dbms"))
        if task is None:
            return "200 OK", {"task": None}
        return "200 OK", {"task": task.to_dict()}

    if path == "/api/tasks" and method == "POST":
        contributor = service.authenticate(key)
        experiment = service.store.experiment(int(body["experiment"]))
        tasks = service.next_tasks(contributor, experiment,
                                   limit=int(body.get("count", 1)),
                                   dbms_label=body.get("dbms"))
        return "200 OK", {"tasks": [task.to_dict() for task in tasks]}

    if path == "/api/results/batch" and method == "POST":
        contributor = service.authenticate(key)
        submissions = [
            {
                "task": int(entry["task"]),
                "times": list(entry.get("times", [])),
                "error": entry.get("error"),
                "load_averages": entry.get("load_averages") or {},
                "extras": entry.get("extras") or {},
                "idempotency_key": entry.get("idempotency_key"),
                "attempt": entry.get("attempt"),
            }
            for entry in body.get("results", [])
        ]
        records = service.submit_results(contributor, submissions)
        # a ``null`` entry acknowledges a stale submission that was
        # deliberately dropped; the client must not resubmit it.
        return "200 OK", {"results": [
            record.to_dict() if record is not None else None for record in records
        ]}

    if path == "/api/result" and method == "POST":
        contributor = service.authenticate(key)
        task = service.store.task(int(body["task"]))
        result = service.submit_result(
            contributor,
            task,
            times=list(body.get("times", [])),
            error=body.get("error"),
            load_averages=body.get("load_averages") or {},
            extras=body.get("extras") or {},
            idempotency_key=body.get("idempotency_key"),
            attempt=body.get("attempt"),
        )
        return "200 OK", {"result": result.to_dict() if result is not None else None}

    if path == "/api/results" and method == "GET":
        experiment = service.store.experiment(int(query["experiment"]))
        records = service.results(experiment, viewer=viewer)
        return "200 OK", [record.to_dict() for record in records]

    raise NotFound(f"no endpoint for {method} {path}")


class _QuietHandler(WSGIRequestHandler):
    """Request handler that does not spam stderr with access logs."""

    def log_message(self, format, *args):  # noqa: A002 - signature fixed by stdlib
        pass


def _handler_class(logger: JsonLogger | None) -> type[WSGIRequestHandler]:
    """A request-handler class routing stdlib access logs through ``logger``.

    ``BaseHTTPRequestHandler`` writes one raw line to stderr per request,
    which interleaves badly under concurrent claimers; with a structured
    logger attached those lines become ``http.access`` JSON records on the
    shared sink (one ``write`` each, so they never shear), and without one
    the handler is fully quiet -- tests and the in-process driver see no
    request logging at all.
    """
    if logger is None:
        return _QuietHandler
    access_log = logger.bind("webapp")

    class _StructuredHandler(WSGIRequestHandler):
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            access_log.info("http.access", client=self.address_string(),
                            message=format % args)

    return _StructuredHandler


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """WSGI server handling each request on its own daemon thread.

    ``wsgiref``'s default server is single-threaded, which would serialise
    every contributor behind the slowest request and hide concurrency bugs
    from the chaos/load tests.  Handler threads are daemonic so a hung
    request cannot block interpreter shutdown; request-level consistency is
    the service's job (its queue lock makes claim/submit transitions atomic).
    """

    daemon_threads = True


class PlatformServer:
    """A background HTTP server wrapping the WSGI app (used by driver tests/examples).

    ``application`` overrides the WSGI callable (the fault-injection tests
    wrap the real app in deliberately misbehaving middleware).
    """

    def __init__(self, service: PlatformService, host: str = "127.0.0.1",
                 port: int = 0, application: Callable | None = None,
                 logger: JsonLogger | None = None):
        self.service = service
        self._server = make_server(host, port,
                                   application or create_wsgi_app(service, logger),
                                   server_class=ThreadingWSGIServer,
                                   handler_class=_handler_class(logger))
        self.host = host
        self.port = self._server.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlatformServer":
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server.server_close()

    def __enter__(self) -> "PlatformServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
