"""Seeded fault injection for the platform pipeline.

The paper's platform lives off inherently unreliable crowd-sourced
contributors; this module makes that unreliability reproducible so the
fault-tolerance machinery (task leases with retry budgets, idempotent result
submission, the crash-safe store) can be driven by tests instead of waited
for in production.  Three wrappers share one seeded :class:`FaultInjector`:

* :class:`UnreliableClient` wraps any driver ``PlatformClient`` and injects
  *transport* faults: requests dropped before the server sees them,
  responses dropped after the server processed them (the at-least-once
  crux), duplicated deliveries, and artificial delays,
* :class:`FlakyEngine` wraps an engine and injects *execution* faults
  (queries that randomly raise), exercising the error -> retry -> dead-letter
  path of the task lifecycle,
* :meth:`FaultInjector.store_hook` plugs into ``Store.fault_hook`` and
  injects *crashes* inside multi-row store transactions, exercising the
  all-or-nothing batch guarantees.

Every decision comes from one seeded ``random.Random`` behind a lock, and
every injected fault is counted in :attr:`FaultInjector.counts`, so a chaos
run can assert both that the faults actually fired and that the accounting
invariants survived them.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, fields

from repro.errors import TransportError


class SimulatedCrash(Exception):
    """Raised by an injected store crash (deliberately *not* a SqalpelError).

    It models the process dying mid-transaction, so nothing in the library
    catches it as a domain error; only the transport boundary converts it
    into a retryable :class:`~repro.errors.TransportError`.
    """


@dataclass(frozen=True)
class FaultConfig:
    """Per-fault-kind probabilities in [0, 1] (all default to never)."""

    #: request lost before the server sees it (claim/submission never lands).
    drop_request: float = 0.0
    #: server processed the request but the response is lost -- the client
    #: must retry a request whose effects already happened.
    drop_response: float = 0.0
    #: the request is delivered twice (the duplicate's outcome is discarded).
    duplicate: float = 0.0
    #: artificial latency of up to ``max_delay_seconds`` around a request.
    delay: float = 0.0
    max_delay_seconds: float = 0.01
    #: a query execution raises instead of returning rows.
    fail_task: float = 0.0
    #: the store "crashes" inside a multi-row transaction.
    store_crash: float = 0.0


class FaultInjector:
    """Seeded, thread-safe source of fault decisions with per-kind counts."""

    def __init__(self, config: FaultConfig | None = None, seed: int = 0):
        self.config = config or FaultConfig()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.counts: dict[str, int] = {f.name: 0 for f in fields(FaultConfig)
                                       if f.name != "max_delay_seconds"}

    def fire(self, kind: str) -> bool:
        """Roll the dice for fault ``kind``; count and report a hit."""
        probability = getattr(self.config, kind)
        with self._lock:
            if probability <= 0.0 or self._rng.random() >= probability:
                return False
            self.counts[kind] += 1
            return True

    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def maybe_delay(self) -> None:
        if self.fire("delay"):
            with self._lock:
                pause = self._rng.uniform(0.0, self.config.max_delay_seconds)
            time.sleep(pause)

    def store_hook(self, point: str) -> None:
        """``Store.fault_hook`` adapter: crash the store at write/commit points."""
        if self.fire("store_crash"):
            raise SimulatedCrash(f"injected store crash at {point}")


class UnreliableClient:
    """A ``PlatformClient`` decorator that injects transport faults.

    The wrapped client keeps the exact protocol, so a ``BatchRunner`` (or any
    other driver) runs against it unchanged -- its retry/backoff and the
    platform's idempotency keys are what must absorb the injected faults.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def _call(self, name: str, *args, **kwargs):
        self.injector.maybe_delay()
        if self.injector.fire("drop_request"):
            raise TransportError(f"injected fault: {name} request dropped "
                                 "before delivery")
        method = getattr(self.inner, name)
        try:
            outcome = method(*args, **kwargs)
            if self.injector.fire("duplicate"):
                # the network delivered the same request twice; the second
                # delivery's outcome (or failure) is invisible to the caller.
                try:
                    method(*args, **kwargs)
                except Exception:
                    pass
        except SimulatedCrash as exc:
            raise TransportError(f"injected fault: server crashed during "
                                 f"{name}: {exc}") from exc
        if self.injector.fire("drop_response"):
            raise TransportError(f"injected fault: {name} response dropped "
                                 "after processing")
        return outcome

    # -- PlatformClient protocol --------------------------------------------------

    def next_task(self, experiment_id, dbms=None):
        return self._call("next_task", experiment_id, dbms=dbms)

    def next_tasks(self, experiment_id, count=1, dbms=None):
        return self._call("next_tasks", experiment_id, count=count, dbms=dbms)

    def submit_result(self, task_id, times, error, load_averages, extras,
                      idempotency_key=None, attempt=None):
        return self._call("submit_result", task_id, times, error, load_averages,
                          extras, idempotency_key=idempotency_key, attempt=attempt)

    def submit_results(self, results):
        return self._call("submit_results", results)

    def results(self, experiment_id):
        return self._call("results", experiment_id)


class FlakyEngine:
    """An engine decorator whose ``execute`` randomly raises.

    ``measure_query`` records the raised error as a first-class failed
    outcome; the platform then burns one lease of the task's retry budget,
    re-queues it, and dead-letters it once the budget is exhausted.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def execute(self, query, **kwargs):
        if self.injector.fire("fail_task"):
            raise RuntimeError("injected fault: query execution failed")
        return self.inner.execute(query, **kwargs)

    def __getattr__(self, name):
        # label/options/strategy/prepare/... all delegate unchanged.
        return getattr(self.inner, name)
