"""The SQALPEL platform: a shareable repository of performance projects.

Section 4 of the paper describes a GitHub-inspired SaaS for performance
projects: users, a global DBMS catalog and hardware/platform catalog, public
and private projects with owners / contributors / readers, experiments
(a baseline query turned into a grammar plus a query pool), an execution
queue with timeouts, contributed results, and comments.

This subpackage implements that platform as a library:

* :mod:`repro.platform.models` -- the entities,
* :mod:`repro.platform.store` -- sqlite3-backed persistence,
* :mod:`repro.platform.service` -- the application service with access
  control (the operations the web GUI exposes),
* :mod:`repro.platform.webapp` -- a WSGI JSON API exposing the service, used
  by the remote experiment driver,
* :mod:`repro.platform.faults` -- seeded fault injection (unreliable
  transports, flaky engines, store crashes) driving the chaos tests.
"""

from repro.platform.models import (
    Comment,
    DBMSEntry,
    Experiment,
    HostEntry,
    Project,
    ResultRecord,
    Task,
    TaskStatus,
    User,
    Visibility,
)
from repro.platform.store import Store
from repro.platform.service import PlatformService
from repro.platform.webapp import create_wsgi_app, PlatformServer, ThreadingWSGIServer
from repro.platform.faults import (
    FaultConfig,
    FaultInjector,
    FlakyEngine,
    SimulatedCrash,
    UnreliableClient,
)

__all__ = [
    "Comment",
    "DBMSEntry",
    "Experiment",
    "HostEntry",
    "Project",
    "ResultRecord",
    "Task",
    "TaskStatus",
    "User",
    "Visibility",
    "Store",
    "PlatformService",
    "create_wsgi_app",
    "PlatformServer",
    "ThreadingWSGIServer",
    "FaultConfig",
    "FaultInjector",
    "FlakyEngine",
    "SimulatedCrash",
    "UnreliableClient",
]
