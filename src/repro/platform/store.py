"""sqlite3-backed persistence for the platform.

Every entity is stored as a JSON document in a two-column table
(``id INTEGER PRIMARY KEY, body TEXT``).  The document approach keeps the
store schema-stable while the entity dataclasses evolve, and an in-memory
database (``path=":memory:"``) makes tests and the in-process driver cheap.

Durability and concurrency:

* file-backed databases open in **WAL mode** with a ``busy_timeout`` --
  readers never block the writer, a second process can open the same file,
  and a crash mid-transaction rolls back to the last commit on reopen,
* every multi-row write (:meth:`insert_many`, :meth:`update_many`,
  :meth:`apply_batch`) is one sqlite transaction: either every row of the
  batch is visible after reopen or none is,
* the **idempotency table** maps client-generated submission keys to result
  ids inside the same transaction that inserts the result, so a retried
  submission can replay the original record instead of inserting a duplicate,
* hot lookups (``user_by_key`` / ``user_by_nickname``) go through
  ``json_extract`` expression indexes instead of deserialising the table.

``fault_hook`` is the seam for the fault-injection harness
(:mod:`repro.platform.faults`): when set, it is invoked with a fault-point
label before every write inside a batch and before the final commit, and may
raise to simulate a crash at exactly that point.  The batch is rolled back so
the connection stays usable -- the on-disk state is the same one a process
kill at that point would leave behind after sqlite's recovery.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Callable, Iterable, TypeVar

from repro.errors import NotFound
from repro.obs import NULL_LOGGER, JsonLogger
from repro.platform import models


def _encode(payload: dict) -> str:
    """Serialise a row body; compact separators, since nobody reads raw rows
    and result rows can carry dozens of shipped span records in ``extras``."""
    return json.dumps(payload, separators=(",", ":"))


_TABLES = (
    "users",
    "dbms_catalog",
    "host_catalog",
    "projects",
    "experiments",
    "tasks",
    "results",
    "comments",
)

#: ``json_extract`` expression indexes created at startup: (name, table, path).
#: The lookup SQL must repeat the indexed expression *verbatim* (a bound
#: parameter in the path would not match the index expression).
_INDEXES = (
    ("users_by_contributor_key", "users", "$.contributor_key"),
    ("users_by_nickname", "users", "$.nickname"),
    ("tasks_by_experiment", "tasks", "$.experiment_id"),
    ("results_by_experiment", "results", "$.experiment_id"),
)

T = TypeVar("T")


class Store:
    """Thread-safe JSON-document store over sqlite3 (WAL for file databases)."""

    def __init__(self, path: str = ":memory:",
                 fault_hook: Callable[[str], None] | None = None,
                 logger: JsonLogger | None = None):
        self.path = path
        #: optional fault-injection seam; see the module docstring.
        self.fault_hook = fault_hook
        #: structured logger for the fault paths (rolled-back batches);
        #: silent by default.
        self.log = (logger or NULL_LOGGER).bind("store")
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        # WAL keeps readers and the writer concurrent and makes crash
        # recovery a journal replay; a :memory: database reports "memory"
        # here and simply ignores the request.
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._create_tables()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def _create_tables(self) -> None:
        with self._lock:
            for table in _TABLES:
                self._connection.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} "
                    "(id INTEGER PRIMARY KEY AUTOINCREMENT, body TEXT NOT NULL)"
                )
            # one row per accepted submission key; the PRIMARY KEY makes a
            # double-insert of the same key impossible even if two racing
            # submissions pass the service-level replay check.
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS idempotency "
                "(key TEXT PRIMARY KEY, result_id INTEGER NOT NULL) WITHOUT ROWID"
            )
            for name, table, json_path in _INDEXES:
                self._connection.execute(
                    f"CREATE INDEX IF NOT EXISTS {name} "
                    f"ON {table} (json_extract(body, '{json_path}'))"
                )
            self._connection.commit()

    def _maybe_fault(self, point: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    # -- generic operations ------------------------------------------------------

    def insert(self, table: str, entity) -> int:
        """Insert ``entity`` (anything with to_dict) and return its new id."""
        payload = entity.to_dict()
        payload.pop("id", None)
        with self._lock:
            cursor = self._connection.execute(
                f"INSERT INTO {table} (body) VALUES (?)", (_encode(payload),)
            )
            self._connection.commit()
            entity.id = int(cursor.lastrowid)
            return entity.id

    def insert_many(self, table: str, entities: list) -> list[int]:
        """Insert a batch of entities in one transaction; return their new ids."""
        if not entities:
            return []
        with self._lock:
            ids: list[int] = []
            try:
                for entity in entities:
                    self._maybe_fault("insert_many.write")
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"INSERT INTO {table} (body) VALUES (?)", (_encode(payload),)
                    )
                    entity.id = int(cursor.lastrowid)
                    ids.append(entity.id)
                self._maybe_fault("insert_many.commit")
            except Exception as exc:
                self._rollback("insert_many", exc)
                for entity in entities:
                    entity.id = None
                raise
            self._connection.commit()
            return ids

    def update_many(self, table: str, entities: list) -> None:
        """Persist a batch of entities in one transaction (all or nothing)."""
        if not entities:
            return
        with self._lock:
            try:
                for entity in entities:
                    self._maybe_fault("update_many.write")
                    if entity.id is None:
                        raise NotFound(f"cannot update an unsaved entity in '{table}'")
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"UPDATE {table} SET body = ? WHERE id = ?",
                        (_encode(payload), entity.id),
                    )
                    if cursor.rowcount == 0:
                        raise NotFound(f"no entity with id {entity.id} in '{table}'")
                self._maybe_fault("update_many.commit")
            except Exception as exc:
                self._rollback("update_many", exc)
                raise
            self._connection.commit()

    def apply_batch(self, inserts: list[tuple[str, object]],
                    updates: list[tuple[str, object]],
                    idempotency: list[tuple[str, object]] = ()) -> None:
        """Apply inserts, updates and idempotency rows atomically.

        ``inserts`` and ``updates`` are ``(table, entity)`` pairs;
        ``idempotency`` is ``(key, entity)`` pairs whose entity must be among
        the inserts -- its assigned id is recorded under the key in the same
        transaction, so a result and its replay marker become visible
        together or not at all.  When any write fails (missing row, injected
        crash, duplicate key) the whole batch rolls back and insert ids are
        reset, so callers never observe a half-applied batch.
        """
        with self._lock:
            try:
                for table, entity in inserts:
                    self._maybe_fault("apply_batch.insert")
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"INSERT INTO {table} (body) VALUES (?)", (_encode(payload),)
                    )
                    entity.id = int(cursor.lastrowid)
                for table, entity in updates:
                    self._maybe_fault("apply_batch.update")
                    if entity.id is None:
                        raise NotFound(f"cannot update an unsaved entity in '{table}'")
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"UPDATE {table} SET body = ? WHERE id = ?",
                        (_encode(payload), entity.id),
                    )
                    if cursor.rowcount == 0:
                        raise NotFound(f"no entity with id {entity.id} in '{table}'")
                for key, entity in idempotency:
                    self._connection.execute(
                        "INSERT INTO idempotency (key, result_id) VALUES (?, ?)",
                        (key, entity.id),
                    )
                self._maybe_fault("apply_batch.commit")
            except Exception as exc:
                self._rollback("apply_batch", exc)
                for _table, entity in inserts:
                    entity.id = None
                raise
            self._connection.commit()

    def _rollback(self, operation: str = "",
                  cause: Exception | None = None) -> None:
        self.log.error("store.rollback", operation=operation,
                       error=str(cause) if cause is not None else None,
                       error_type=type(cause).__name__ if cause is not None else None)
        try:
            self._connection.rollback()
        except sqlite3.Error:  # pragma: no cover - connection already gone
            pass

    def update(self, table: str, entity) -> None:
        """Persist the current state of ``entity`` (must already have an id)."""
        if entity.id is None:
            raise NotFound(f"cannot update an unsaved entity in '{table}'")
        payload = entity.to_dict()
        payload.pop("id", None)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE {table} SET body = ? WHERE id = ?",
                (_encode(payload), entity.id),
            )
            self._connection.commit()
            if cursor.rowcount == 0:
                raise NotFound(f"no entity with id {entity.id} in '{table}'")

    def delete(self, table: str, entity_id: int) -> None:
        with self._lock:
            cursor = self._connection.execute(
                f"DELETE FROM {table} WHERE id = ?", (entity_id,)
            )
            self._connection.commit()
            if cursor.rowcount == 0:
                raise NotFound(f"no entity with id {entity_id} in '{table}'")

    def get(self, table: str, entity_id: int, factory: Callable[[dict], T]) -> T:
        with self._lock:
            row = self._connection.execute(
                f"SELECT id, body FROM {table} WHERE id = ?", (entity_id,)
            ).fetchone()
        if row is None:
            raise NotFound(f"no entity with id {entity_id} in '{table}'")
        return self._build(row, factory)

    def all(self, table: str, factory: Callable[[dict], T]) -> list[T]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT id, body FROM {table} ORDER BY id"
            ).fetchall()
        return [self._build(row, factory) for row in rows]

    def find(self, table: str, factory: Callable[[dict], T],
             predicate: Callable[[T], bool]) -> list[T]:
        return [entity for entity in self.all(table, factory) if predicate(entity)]

    def _find_indexed(self, table: str, json_path: str, value,
                      factory: Callable[[dict], T]) -> list[T]:
        """Rows whose ``json_extract(body, json_path)`` equals ``value``.

        ``json_path`` must be one of the expressions in :data:`_INDEXES` so
        sqlite can satisfy the lookup from the index (O(log n)) instead of a
        full deserialising scan.  The path is interpolated, not bound: a
        parameter would not match the indexed expression.
        """
        assert any(path == json_path and table == t for _n, t, path in _INDEXES)
        with self._lock:
            rows = self._connection.execute(
                f"SELECT id, body FROM {table} "
                f"WHERE json_extract(body, '{json_path}') = ? ORDER BY id",
                (value,),
            ).fetchall()
        return [self._build(row, factory) for row in rows]

    @staticmethod
    def _build(row: Iterable, factory: Callable[[dict], T]) -> T:
        entity_id, body = row
        payload = json.loads(body)
        payload["id"] = int(entity_id)
        return factory(payload)

    # -- idempotent submissions ---------------------------------------------------

    def recall_submission(self, key: str) -> int | None:
        """The result id recorded under ``key``, or None for a fresh key."""
        with self._lock:
            row = self._connection.execute(
                "SELECT result_id FROM idempotency WHERE key = ?", (key,)
            ).fetchone()
        return int(row[0]) if row else None

    def idempotency_size(self) -> int:
        """Number of remembered submission keys (chaos-test accounting)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM idempotency").fetchone()
        return int(row[0])

    # -- typed convenience accessors ----------------------------------------------

    def users(self) -> list[models.User]:
        return self.all("users", models.User.from_dict)

    def user(self, user_id: int) -> models.User:
        return self.get("users", user_id, models.User.from_dict)

    def user_by_nickname(self, nickname: str) -> models.User | None:
        matches = self._find_indexed("users", "$.nickname", nickname,
                                     models.User.from_dict)
        return matches[0] if matches else None

    def user_by_key(self, contributor_key: str) -> models.User | None:
        matches = self._find_indexed("users", "$.contributor_key", contributor_key,
                                     models.User.from_dict)
        return matches[0] if matches else None

    def projects(self) -> list[models.Project]:
        return self.all("projects", models.Project.from_dict)

    def project(self, project_id: int) -> models.Project:
        return self.get("projects", project_id, models.Project.from_dict)

    def dbms_catalog(self) -> list[models.DBMSEntry]:
        return self.all("dbms_catalog", models.DBMSEntry.from_dict)

    def dbms(self, dbms_id: int) -> models.DBMSEntry:
        return self.get("dbms_catalog", dbms_id, models.DBMSEntry.from_dict)

    def host_catalog(self) -> list[models.HostEntry]:
        return self.all("host_catalog", models.HostEntry.from_dict)

    def host(self, host_id: int) -> models.HostEntry:
        return self.get("host_catalog", host_id, models.HostEntry.from_dict)

    def experiments(self, project_id: int | None = None) -> list[models.Experiment]:
        experiments = self.all("experiments", models.Experiment.from_dict)
        if project_id is None:
            return experiments
        return [experiment for experiment in experiments
                if experiment.project_id == project_id]

    def experiment(self, experiment_id: int) -> models.Experiment:
        return self.get("experiments", experiment_id, models.Experiment.from_dict)

    def tasks(self, experiment_id: int | None = None) -> list[models.Task]:
        if experiment_id is None:
            return self.all("tasks", models.Task.from_dict)
        return self._find_indexed("tasks", "$.experiment_id", experiment_id,
                                  models.Task.from_dict)

    def task(self, task_id: int) -> models.Task:
        return self.get("tasks", task_id, models.Task.from_dict)

    def results(self, experiment_id: int | None = None) -> list[models.ResultRecord]:
        if experiment_id is None:
            return self.all("results", models.ResultRecord.from_dict)
        return self._find_indexed("results", "$.experiment_id", experiment_id,
                                  models.ResultRecord.from_dict)

    def result(self, result_id: int) -> models.ResultRecord:
        return self.get("results", result_id, models.ResultRecord.from_dict)

    def comments(self, project_id: int) -> list[models.Comment]:
        return self.find("comments", models.Comment.from_dict,
                         lambda comment: comment.project_id == project_id)
