"""sqlite3-backed persistence for the platform.

Every entity is stored as a JSON document in a two-column table
(``id INTEGER PRIMARY KEY, body TEXT``).  The document approach keeps the
store schema-stable while the entity dataclasses evolve, and an in-memory
database (``path=":memory:"``) makes tests and the in-process driver cheap.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Callable, Iterable, TypeVar

from repro.errors import NotFound
from repro.platform import models

_TABLES = (
    "users",
    "dbms_catalog",
    "host_catalog",
    "projects",
    "experiments",
    "tasks",
    "results",
    "comments",
)

T = TypeVar("T")


class Store:
    """Thread-safe JSON-document store over sqlite3."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self._create_tables()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def _create_tables(self) -> None:
        with self._lock:
            for table in _TABLES:
                self._connection.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} "
                    "(id INTEGER PRIMARY KEY AUTOINCREMENT, body TEXT NOT NULL)"
                )
            self._connection.commit()

    # -- generic operations ------------------------------------------------------

    def insert(self, table: str, entity) -> int:
        """Insert ``entity`` (anything with to_dict) and return its new id."""
        payload = entity.to_dict()
        payload.pop("id", None)
        with self._lock:
            cursor = self._connection.execute(
                f"INSERT INTO {table} (body) VALUES (?)", (json.dumps(payload),)
            )
            self._connection.commit()
            entity.id = int(cursor.lastrowid)
            return entity.id

    def insert_many(self, table: str, entities: list) -> list[int]:
        """Insert a batch of entities in one transaction; return their new ids."""
        if not entities:
            return []
        with self._lock:
            ids: list[int] = []
            for entity in entities:
                payload = entity.to_dict()
                payload.pop("id", None)
                cursor = self._connection.execute(
                    f"INSERT INTO {table} (body) VALUES (?)", (json.dumps(payload),)
                )
                entity.id = int(cursor.lastrowid)
                ids.append(entity.id)
            self._connection.commit()
            return ids

    def update_many(self, table: str, entities: list) -> None:
        """Persist a batch of entities in one transaction."""
        if not entities:
            return
        with self._lock:
            for entity in entities:
                if entity.id is None:
                    raise NotFound(f"cannot update an unsaved entity in '{table}'")
                payload = entity.to_dict()
                payload.pop("id", None)
                cursor = self._connection.execute(
                    f"UPDATE {table} SET body = ? WHERE id = ?",
                    (json.dumps(payload), entity.id),
                )
                if cursor.rowcount == 0:
                    self._connection.rollback()
                    raise NotFound(f"no entity with id {entity.id} in '{table}'")
            self._connection.commit()

    def apply_batch(self, inserts: list[tuple[str, object]],
                    updates: list[tuple[str, object]]) -> None:
        """Apply inserts and updates atomically: all writes commit together.

        Each element is a ``(table, entity)`` pair.  When any update targets
        a missing row the whole batch -- including the inserts -- is rolled
        back, so callers never observe a half-applied batch.
        """
        with self._lock:
            try:
                for table, entity in inserts:
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"INSERT INTO {table} (body) VALUES (?)", (json.dumps(payload),)
                    )
                    entity.id = int(cursor.lastrowid)
                for table, entity in updates:
                    if entity.id is None:
                        raise NotFound(f"cannot update an unsaved entity in '{table}'")
                    payload = entity.to_dict()
                    payload.pop("id", None)
                    cursor = self._connection.execute(
                        f"UPDATE {table} SET body = ? WHERE id = ?",
                        (json.dumps(payload), entity.id),
                    )
                    if cursor.rowcount == 0:
                        raise NotFound(f"no entity with id {entity.id} in '{table}'")
            except Exception:
                self._connection.rollback()
                for _table, entity in inserts:
                    entity.id = None
                raise
            self._connection.commit()

    def update(self, table: str, entity) -> None:
        """Persist the current state of ``entity`` (must already have an id)."""
        if entity.id is None:
            raise NotFound(f"cannot update an unsaved entity in '{table}'")
        payload = entity.to_dict()
        payload.pop("id", None)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE {table} SET body = ? WHERE id = ?",
                (json.dumps(payload), entity.id),
            )
            self._connection.commit()
            if cursor.rowcount == 0:
                raise NotFound(f"no entity with id {entity.id} in '{table}'")

    def delete(self, table: str, entity_id: int) -> None:
        with self._lock:
            cursor = self._connection.execute(
                f"DELETE FROM {table} WHERE id = ?", (entity_id,)
            )
            self._connection.commit()
            if cursor.rowcount == 0:
                raise NotFound(f"no entity with id {entity_id} in '{table}'")

    def get(self, table: str, entity_id: int, factory: Callable[[dict], T]) -> T:
        with self._lock:
            row = self._connection.execute(
                f"SELECT id, body FROM {table} WHERE id = ?", (entity_id,)
            ).fetchone()
        if row is None:
            raise NotFound(f"no entity with id {entity_id} in '{table}'")
        return self._build(row, factory)

    def all(self, table: str, factory: Callable[[dict], T]) -> list[T]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT id, body FROM {table} ORDER BY id"
            ).fetchall()
        return [self._build(row, factory) for row in rows]

    def find(self, table: str, factory: Callable[[dict], T],
             predicate: Callable[[T], bool]) -> list[T]:
        return [entity for entity in self.all(table, factory) if predicate(entity)]

    @staticmethod
    def _build(row: Iterable, factory: Callable[[dict], T]) -> T:
        entity_id, body = row
        payload = json.loads(body)
        payload["id"] = int(entity_id)
        return factory(payload)

    # -- typed convenience accessors ----------------------------------------------

    def users(self) -> list[models.User]:
        return self.all("users", models.User.from_dict)

    def user(self, user_id: int) -> models.User:
        return self.get("users", user_id, models.User.from_dict)

    def user_by_nickname(self, nickname: str) -> models.User | None:
        matches = self.find("users", models.User.from_dict,
                            lambda user: user.nickname == nickname)
        return matches[0] if matches else None

    def user_by_key(self, contributor_key: str) -> models.User | None:
        matches = self.find("users", models.User.from_dict,
                            lambda user: user.contributor_key == contributor_key)
        return matches[0] if matches else None

    def projects(self) -> list[models.Project]:
        return self.all("projects", models.Project.from_dict)

    def project(self, project_id: int) -> models.Project:
        return self.get("projects", project_id, models.Project.from_dict)

    def dbms_catalog(self) -> list[models.DBMSEntry]:
        return self.all("dbms_catalog", models.DBMSEntry.from_dict)

    def dbms(self, dbms_id: int) -> models.DBMSEntry:
        return self.get("dbms_catalog", dbms_id, models.DBMSEntry.from_dict)

    def host_catalog(self) -> list[models.HostEntry]:
        return self.all("host_catalog", models.HostEntry.from_dict)

    def host(self, host_id: int) -> models.HostEntry:
        return self.get("host_catalog", host_id, models.HostEntry.from_dict)

    def experiments(self, project_id: int | None = None) -> list[models.Experiment]:
        experiments = self.all("experiments", models.Experiment.from_dict)
        if project_id is None:
            return experiments
        return [experiment for experiment in experiments
                if experiment.project_id == project_id]

    def experiment(self, experiment_id: int) -> models.Experiment:
        return self.get("experiments", experiment_id, models.Experiment.from_dict)

    def tasks(self, experiment_id: int | None = None) -> list[models.Task]:
        tasks = self.all("tasks", models.Task.from_dict)
        if experiment_id is None:
            return tasks
        return [task for task in tasks if task.experiment_id == experiment_id]

    def task(self, task_id: int) -> models.Task:
        return self.get("tasks", task_id, models.Task.from_dict)

    def results(self, experiment_id: int | None = None) -> list[models.ResultRecord]:
        results = self.all("results", models.ResultRecord.from_dict)
        if experiment_id is None:
            return results
        return [result for result in results if result.experiment_id == experiment_id]

    def result(self, result_id: int) -> models.ResultRecord:
        return self.get("results", result_id, models.ResultRecord.from_dict)

    def comments(self, project_id: int) -> list[models.Comment]:
        return self.find("comments", models.Comment.from_dict,
                         lambda comment: comment.project_id == project_id)
