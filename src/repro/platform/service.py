"""Application service: the operations the SQALPEL web GUI and driver rely on.

The service enforces the access-control model of Section 4.2:

* anyone may read **public** projects (description and results) but only
  contributors may submit results,
* **private** projects are invisible to non-members; "for contributors the
  information shielding is lifted",
* the **project owner** is the moderator: they manage the grammar, expand the
  query pool, manage result visibility, and invite contributors,
* "A project declared public may not contain references to private DBMS and
  host settings" -- enforced when an experiment is attached to a project.

It also owns the execution queue ("The execution status is tracked in a
queue, which enables killing queries that got stuck or when the results of an
experiment are not delivered within a specified timeout interval").  Queue
entries are *leases*: claiming a task starts a lease of the experiment's
timeout, an overdue lease is swept back to pending (or dead-lettered once the
task's retry budget is exhausted) on the next claim, and result submission is
idempotent -- a client-generated key makes retried submissions replay the
original record, and the lease's attempt number fences out submissions from
contributors whose lease has already been reassigned.  All claim/submit
transitions happen under one service-level lock so concurrent requests (the
threaded web server) can never double-assign a task.
"""

from __future__ import annotations

import secrets
import threading
import time

from repro.core import parse_grammar, serialize_grammar, validate
from repro.core.templates import DEFAULT_TEMPLATE_LIMIT
from repro.errors import AccessDenied, ConflictError, NotFound, ValidationError
from repro.platform.models import (
    Comment,
    DBMSEntry,
    Experiment,
    HostEntry,
    Project,
    ResultRecord,
    Task,
    TaskStatus,
    User,
    Visibility,
)
from repro.obs import (
    NULL_LOGGER,
    FlightRecorder,
    JsonLogger,
    MetricsRegistry,
    SpanRecorder,
    TelemetryConfig,
    new_trace_id,
)
from repro.platform.store import Store
from repro.pool.guidance import Guidance
from repro.pool.morph import Morpher, Strategy
from repro.pool.pool import QueryPool
from repro.sqlparser import extract_grammar
from repro.sqlparser.extract import ExtractionOptions


class PlatformService:
    """Facade over the store implementing the platform's use cases."""

    def __init__(self, store: Store | None = None,
                 metrics: MetricsRegistry | None = None,
                 logger: JsonLogger | None = None,
                 telemetry: TelemetryConfig | None = None):
        self.store = store or Store()
        #: service-level counters/histograms (tasks dispatched, results
        #: accepted, queue timeouts); the webapp serves its snapshot at
        #: ``/api/metrics``.
        self.metrics = metrics or MetricsRegistry()
        #: telemetry knobs shared by the span recorder and flight recorder;
        #: ``TelemetryConfig.disabled()`` turns both into cheap no-ops.
        self.telemetry = telemetry or TelemetryConfig()
        #: structured JSON-lines logger (``NULL_LOGGER`` by default: the
        #: service stays silent unless a sink is attached).
        self.log = (logger or NULL_LOGGER).bind("service")
        #: server-side span records (claim / sweep / submit / dedup), keyed
        #: by each task's stable trace id so ``analytics/timeline.py`` can
        #: stitch them against the driver's spans.
        self.spans = SpanRecorder(
            self.telemetry.span_capacity if self.telemetry.enabled else 0)
        #: ring buffer of the slowest / failed task traces.
        self.flight = FlightRecorder(
            self.telemetry.flight_capacity if self.telemetry.enabled else 0,
            slow_task_seconds=self.telemetry.slow_task_seconds,
            sink_path=self.telemetry.flight_log)
        #: serialises every task-state transition (claim, sweep, submit,
        #: kill).  The claim path reads pending tasks and persists the claim
        #: under this lock, so two concurrent ``/api/tasks`` requests on the
        #: threaded server can never assign the same task twice.
        self._queue_lock = threading.RLock()

    # ------------------------------------------------------------------ users

    def register_user(self, nickname: str, email: str) -> User:
        """Register a user; nicknames are unique, the contributor key is generated."""
        if not nickname or not email or "@" not in email:
            raise ValidationError("a nickname and a valid email address are required")
        if self.store.user_by_nickname(nickname) is not None:
            raise ConflictError(f"nickname '{nickname}' is already registered")
        user = User(nickname=nickname, email=email,
                    contributor_key=secrets.token_hex(16))
        self.store.insert("users", user)
        return user

    def authenticate(self, contributor_key: str) -> User:
        """Resolve a contributor key to its user (the driver's credential)."""
        user = self.store.user_by_key(contributor_key)
        if user is None:
            raise AccessDenied("unknown contributor key")
        return user

    def list_users(self) -> list[dict]:
        """Public views of all users (no email addresses, per Section 5.2)."""
        return [user.public_view() for user in self.store.users()]

    # ------------------------------------------------------------- catalogs

    def register_dbms(self, name: str, version: str, dialect: str = "generic",
                      description: str = "", settings: dict | None = None) -> DBMSEntry:
        """Add a DBMS (+ configuration) to the global catalog."""
        entry = DBMSEntry(name=name, version=version, dialect=dialect,
                          description=description, settings=settings or {})
        self.store.insert("dbms_catalog", entry)
        return entry

    def register_host(self, name: str, cpu: str = "", memory_gb: float = 0.0,
                      os: str = "", description: str = "") -> HostEntry:
        """Add a hardware platform to the catalog."""
        entry = HostEntry(name=name, cpu=cpu, memory_gb=memory_gb, os=os,
                          description=description)
        self.store.insert("host_catalog", entry)
        return entry

    def dbms_catalog(self) -> list[DBMSEntry]:
        return self.store.dbms_catalog()

    def host_catalog(self) -> list[HostEntry]:
        return self.store.host_catalog()

    # ------------------------------------------------------------- projects

    def create_project(self, owner: User, name: str, synopsis: str = "",
                       visibility: Visibility | str = Visibility.PUBLIC,
                       attribution: str = "") -> Project:
        """Create a project owned (and moderated) by ``owner``."""
        if isinstance(visibility, str):
            visibility = Visibility(visibility)
        if any(project.name == name for project in self.store.projects()):
            raise ConflictError(f"a project named '{name}' already exists")
        project = Project(name=name, owner_id=owner.id, synopsis=synopsis,
                          visibility=visibility, attribution=attribution)
        self.store.insert("projects", project)
        return project

    def invite_contributor(self, acting: User, project: Project, invitee: User) -> Project:
        """Owner-only: add ``invitee`` to the project's contributors."""
        self._require_owner(acting, project)
        if invitee.id not in project.contributor_ids:
            project.contributor_ids.append(invitee.id)
            self.store.update("projects", project)
        return project

    def set_visibility(self, acting: User, project: Project,
                       visibility: Visibility | str) -> Project:
        """Owner-only: flip a project between public and private."""
        self._require_owner(acting, project)
        project.visibility = Visibility(visibility) if isinstance(visibility, str) else visibility
        self.store.update("projects", project)
        return project

    def list_projects(self, viewer: User | None = None) -> list[Project]:
        """Projects visible to ``viewer`` (public ones plus their memberships)."""
        return [project for project in self.store.projects()
                if self._can_read(viewer, project)]

    def get_project(self, project_id: int, viewer: User | None = None) -> Project:
        project = self.store.project(project_id)
        if not self._can_read(viewer, project):
            raise AccessDenied("this project is private")
        return project

    def add_comment(self, user: User, project: Project, text: str) -> Comment:
        """Registered users can comment on projects they can read."""
        if not self._can_read(user, project):
            raise AccessDenied("this project is private")
        if not text.strip():
            raise ValidationError("a comment needs a non-empty text")
        comment = Comment(project_id=project.id, user_id=user.id, text=text)
        self.store.insert("comments", comment)
        return comment

    def comments(self, project: Project, viewer: User | None = None) -> list[Comment]:
        if not self._can_read(viewer, project):
            raise AccessDenied("this project is private")
        return self.store.comments(project.id)

    # -------------------------------------------------------------- experiments

    def add_experiment(self, acting: User, project: Project, name: str,
                       baseline_sql: str, dbms: DBMSEntry | None = None,
                       host: HostEntry | None = None,
                       grammar_text: str | None = None,
                       template_limit: int = DEFAULT_TEMPLATE_LIMIT,
                       repeats: int = 5, timeout_seconds: float = 60.0,
                       max_attempts: int = 3,
                       guidance: Guidance | None = None) -> Experiment:
        """Attach an experiment to a project.

        The baseline query is converted into a SQALPEL grammar (unless an
        explicit, e.g. manually edited, grammar text is supplied), validated,
        and stored in its textual form so the owner can keep editing it.
        """
        self._require_owner(acting, project)
        if project.is_public() and dbms is not None and dbms.settings.get("private"):
            raise ValidationError(
                "a public project may not reference private DBMS settings")
        if grammar_text is None:
            grammar = extract_grammar(baseline_sql, ExtractionOptions(name=name))
            grammar_text = serialize_grammar(grammar)
        else:
            grammar = parse_grammar(grammar_text, name=name)
        report = validate(grammar)
        if not report.ok:
            raise ValidationError(f"grammar is invalid: {report.summary()}")
        if max_attempts <= 0:
            raise ValidationError("max_attempts must be a positive integer")
        experiment = Experiment(
            project_id=project.id,
            name=name,
            baseline_sql=baseline_sql,
            grammar_text=grammar_text,
            dbms_id=dbms.id if dbms else None,
            host_id=host.id if host else None,
            guidance=(guidance or Guidance()).describe(),
            template_limit=template_limit,
            repeats=repeats,
            timeout_seconds=timeout_seconds,
            max_attempts=max_attempts,
        )
        self.store.insert("experiments", experiment)
        return experiment

    def update_grammar(self, acting: User, experiment: Experiment,
                       grammar_text: str) -> Experiment:
        """Owner-only manual grammar edit (e.g. fusing rules to shrink the space)."""
        project = self.store.project(experiment.project_id)
        self._require_owner(acting, project)
        report = validate(parse_grammar(grammar_text, name=experiment.name))
        if not report.ok:
            raise ValidationError(f"grammar is invalid: {report.summary()}")
        experiment.grammar_text = grammar_text
        self.store.update("experiments", experiment)
        return experiment

    def experiments(self, project: Project, viewer: User | None = None) -> list[Experiment]:
        if not self._can_read(viewer, project):
            raise AccessDenied("this project is private")
        return self.store.experiments(project.id)

    def build_pool(self, experiment: Experiment, seed: int = 0) -> QueryPool:
        """Instantiate the query pool of an experiment from its stored grammar."""
        grammar = parse_grammar(experiment.grammar_text, name=experiment.name)
        return QueryPool(grammar, template_limit=experiment.template_limit, seed=seed)

    # ------------------------------------------------------------------ queue

    def enqueue_pool(self, acting: User, experiment: Experiment, pool: QueryPool,
                     dbms_label: str, host_name: str) -> list[Task]:
        """Owner-only: queue every pool entry for one DBMS + host combination."""
        project = self.store.project(experiment.project_id)
        self._require_owner(acting, project)
        existing = {
            (task.query_key, task.dbms_label, task.host_name)
            for task in self.store.tasks(experiment.id)
        }
        created: list[Task] = []
        for entry in pool.entries():
            key = (repr(entry.key), dbms_label, host_name)
            if key in existing:
                continue
            task = Task(
                experiment_id=experiment.id,
                query_sql=entry.sql,
                query_key=repr(entry.key),
                dbms_label=dbms_label,
                host_name=host_name,
                origin=entry.origin,
                parent_key=repr(entry.parent_key) if entry.parent_key else None,
                size=entry.query.size(),
                timeout_seconds=experiment.timeout_seconds,
                max_attempts=experiment.max_attempts,
                trace_id=new_trace_id(),
            )
            self.store.insert("tasks", task)
            created.append(task)
        if self.spans.enabled:
            for task in created:
                self.spans.record("enqueue", task.trace_id, task=task.id,
                                  experiment=experiment.id,
                                  dbms=task.dbms_label, host=task.host_name)
        if created:
            self.log.info("tasks.enqueued", experiment=experiment.id,
                          count=len(created), dbms=dbms_label, host=host_name)
        self.metrics.counter("tasks.enqueued").inc(len(created))
        return created

    def next_task(self, contributor: User, experiment: Experiment,
                  dbms_label: str | None = None) -> Task | None:
        """Hand the next pending task of an experiment to a contributor."""
        claimed = self.next_tasks(contributor, experiment, limit=1, dbms_label=dbms_label)
        return claimed[0] if claimed else None

    def next_tasks(self, contributor: User, experiment: Experiment, limit: int = 1,
                   dbms_label: str | None = None) -> list[Task]:
        """Claim a lease on up to ``limit`` pending tasks in one atomic batch.

        This is the batched-driver entry point: one store scan and one batched
        write claim the whole batch, instead of a round trip per task.  The
        read-claim-persist sequence runs under the queue lock, so concurrent
        claims partition the queue -- no task is ever assigned twice.  Every
        claim first sweeps overdue leases back into the pending pool (or into
        the dead-letter state), so lease expiry needs no background thread:
        the queue heals whenever somebody asks for work.

        Claiming burns one unit of the task's retry budget and stamps the
        attempt number that a later submission must echo to be accepted.
        """
        project = self.store.project(experiment.project_id)
        self._require_contributor(contributor, project)
        if limit <= 0:
            raise ValidationError("the batch size must be a positive integer")
        with self._queue_lock:
            self._sweep_overdue_leases(experiment)
            claimed: list[Task] = []
            now = time.time()
            for task in self.store.tasks(experiment.id):
                if len(claimed) >= limit:
                    break
                if task.status != TaskStatus.PENDING.value:
                    continue
                if dbms_label is not None and task.dbms_label != dbms_label:
                    continue
                task.status = TaskStatus.RUNNING.value
                task.assigned_to = contributor.contributor_key
                task.assigned_at = now
                task.attempts += 1
                if task.trace_id is None:
                    # tasks inserted directly into the store (older data,
                    # test harnesses) get their trace id at first claim.
                    task.trace_id = new_trace_id()
                claimed.append(task)
            self.store.update_many("tasks", claimed)
        if self.spans.enabled:
            for task in claimed:
                self.spans.record("claim", task.trace_id, start=now,
                                  task=task.id, attempt=task.attempts,
                                  contributor=contributor.nickname,
                                  experiment=experiment.id)
        if claimed:
            self.log.info("tasks.dispatched", experiment=experiment.id,
                          count=len(claimed), contributor=contributor.nickname)
        self.metrics.counter("tasks.dispatched").inc(len(claimed))
        return claimed

    def kill_task(self, acting: User, task: Task) -> Task:
        """Owner-only: kill a stuck task."""
        experiment = self.store.experiment(task.experiment_id)
        project = self.store.project(experiment.project_id)
        self._require_owner(acting, project)
        with self._queue_lock:
            task.status = TaskStatus.KILLED.value
            self.store.update("tasks", task)
        self.log.warning("task.killed", task=task.id, trace_id=task.trace_id,
                         killed_by=acting.nickname)
        self.metrics.counter("tasks.killed").inc()
        return task

    def expire_stuck_tasks(self, experiment: Experiment) -> list[Task]:
        """Sweep running tasks whose results were not delivered within the timeout.

        An overdue lease returns its task to the pending pool for another
        contributor (counted as ``tasks.retried``) while the task still has
        retry budget, and dead-letters it otherwise (``tasks.dead_lettered``).
        Returns the swept tasks.  ``next_tasks`` calls this automatically; the
        public method exists for owners and test harnesses that want to heal
        the queue without claiming work.
        """
        with self._queue_lock:
            return self._sweep_overdue_leases(experiment)

    def _sweep_overdue_leases(self, experiment: Experiment) -> list[Task]:
        """Re-queue / dead-letter overdue leases (queue lock must be held).

        The sweep already walks every task of the experiment, so it doubles
        as the sampling point for the queue gauges: pending depth and the
        age of the oldest live lease (both post-sweep).
        """
        swept: list[Task] = []
        retried = dead_lettered = 0
        pending = 0
        oldest_lease = 0.0
        now = time.time()
        for task in self.store.tasks(experiment.id):
            if task.lease_expired(now):
                if task.attempts >= task.max_attempts:
                    task.status = TaskStatus.DEAD_LETTER.value
                    task.last_error = (
                        f"lease expired after {task.timeout_seconds:.1f}s on attempt "
                        f"{task.attempts}/{task.max_attempts} (was assigned to "
                        f"{task.assigned_to})")
                    dead_lettered += 1
                    outcome = "dead_letter"
                else:
                    task.status = TaskStatus.PENDING.value
                    task.assigned_to = None
                    task.assigned_at = None
                    retried += 1
                    outcome = "retried"
                swept.append(task)
                if self.spans.enabled and task.trace_id:
                    self.spans.record("sweep", task.trace_id, start=now,
                                      task=task.id, outcome=outcome,
                                      attempt=task.attempts)
                event = "task.retried" if outcome == "retried" else "task.dead_lettered"
                self.log.warning(event, task=task.id, trace_id=task.trace_id,
                                 attempt=task.attempts, reason="lease_expired")
                if outcome == "dead_letter":
                    self._record_flight(task, "dead_letter", now)
            if task.status == TaskStatus.PENDING.value:
                pending += 1
            elif task.status == TaskStatus.RUNNING.value and task.assigned_at:
                oldest_lease = max(oldest_lease, now - task.assigned_at)
        self.store.update_many("tasks", swept)
        self.metrics.gauge("queue.depth").set(pending)
        self.metrics.gauge("queue.oldest_lease_seconds").set(oldest_lease)
        self.metrics.counter("queue.timeouts").inc(len(swept))
        if retried:
            self.metrics.counter("tasks.retried").inc(retried)
        if dead_lettered:
            self.metrics.counter("tasks.dead_lettered").inc(dead_lettered)
        return swept

    def _record_flight(self, task: Task, outcome: str, now: float) -> None:
        """Offer a terminal task to the flight recorder (with its spans).

        Slowness is measured over the final attempt's *processing* time
        (lease grant to terminal outcome), not the task's queue age: a
        task that sat in a deep queue but executed in milliseconds is a
        capacity signal -- visible in the queue gauges -- not a slow
        task worth a flight entry.
        """
        if not self.flight.enabled or not task.trace_id:
            return
        duration = now - (task.assigned_at or task.created_at)
        if outcome == "done" and duration < self.flight.slow_task_seconds:
            # a fast success can never be retained: skip gathering its spans.
            return
        self.flight.record(
            task_id=task.id, trace_id=task.trace_id, outcome=outcome,
            duration=duration,
            spans=self.spans.spans(task.trace_id),
            attempts=task.attempts, last_error=task.last_error,
            query_key=task.query_key, dbms=task.dbms_label)

    def queue_status(self, experiment: Experiment) -> dict[str, int]:
        """Counts per task status for one experiment."""
        counts: dict[str, int] = {}
        for task in self.store.tasks(experiment.id):
            counts[task.status] = counts.get(task.status, 0) + 1
        return counts

    # ----------------------------------------------------------------- results

    def submit_result(self, contributor: User, task: Task, times: list[float],
                      error: str | None = None, load_averages: dict | None = None,
                      extras: dict | None = None,
                      idempotency_key: str | None = None,
                      attempt: int | None = None) -> ResultRecord | None:
        """Record the outcome of a task run by ``contributor``."""
        return self.submit_results(contributor, [{
            "task": task,
            "times": times,
            "error": error,
            "load_averages": load_averages,
            "extras": extras,
            "idempotency_key": idempotency_key,
            "attempt": attempt,
        }])[0]

    def submit_results(self, contributor: User,
                       submissions: list[dict]) -> list[ResultRecord | None]:
        """Record a batch of task outcomes in one transaction, exactly once.

        Each submission is a dict with keys ``task`` (a :class:`Task` or its
        id), ``times``, and optional ``error`` / ``load_averages`` /
        ``extras`` / ``idempotency_key`` / ``attempt``.  The whole batch is
        validated before anything is written and all fresh writes commit
        atomically: an invalid submission rejects the batch without recording
        anything.

        Fault tolerance (per submission, position-aligned with the returned
        list):

        * a submission whose ``idempotency_key`` was already accepted
          **replays** the original :class:`ResultRecord` instead of inserting
          a duplicate (``results.deduplicated``) -- retrying a batch whose
          response was lost is therefore always safe,
        * a **stale** submission -- its task is no longer running, is leased
          to another contributor, or carries an ``attempt`` number that does
          not match the task's current lease -- is acknowledged but dropped
          (``None`` in the returned list, ``results.stale``), so a slow
          contributor cannot overwrite the outcome of a re-assigned task,
        * a fresh *successful* submission completes the task; a fresh *error*
          submission returns the task to the pending pool (``tasks.retried``)
          until its retry budget is exhausted, then dead-letters it
          (``tasks.dead_lettered``).
        """
        prepared: list[dict] = []
        projects: dict[int, object] = {}
        for submission in submissions:
            task = submission.get("task")
            if not isinstance(task, Task):
                task = self.store.task(int(task))
            experiment = self.store.experiment(task.experiment_id)
            project = projects.get(experiment.project_id)
            if project is None:
                project = self.store.project(experiment.project_id)
                projects[experiment.project_id] = project
            self._require_contributor(contributor, project)
            error = submission.get("error")
            times = list(submission.get("times") or [])
            if error is None and not times:
                raise ValidationError("a successful run must report at least one timing")
            prepared.append({**submission, "task": task, "times": times})

        # buffered metric increments / span records / log events / flight
        # entries, applied only after the batch commits: a crashed
        # (rolled-back) batch is retried by the client and must not count,
        # trace, or log its effects twice.
        counters: dict[str, int] = {}
        best_seconds: list[float] = []
        span_buffer: list[dict] = []
        ingest_buffer: list[dict] = []
        log_buffer: list[tuple[str, str, dict]] = []
        flight_buffer: list[tuple[Task, str]] = []
        batch_started = time.time()

        with self._queue_lock:
            records: list[ResultRecord | None] = []
            inserts: list[ResultRecord] = []
            task_updates: dict[int, Task] = {}
            idempotency: list[tuple[str, ResultRecord]] = []
            for submission in prepared:
                key = submission.get("idempotency_key")
                if key:
                    replay_id = self.store.recall_submission(key)
                    if replay_id is not None:
                        records.append(self.store.result(replay_id))
                        counters["results.deduplicated"] = \
                            counters.get("results.deduplicated", 0) + 1
                        replayed: Task = submission["task"]
                        trace_id = getattr(replayed, "trace_id", None)
                        if trace_id:
                            span_buffer.append({
                                "name": "submit", "trace_id": trace_id,
                                "task": replayed.id, "outcome": "dedup",
                                "dedup": True, "idempotency_key": key,
                            })
                        log_buffer.append(("info", "result.deduplicated", {
                            "task": replayed.id, "trace_id": trace_id,
                            "idempotency_key": key,
                        }))
                        continue
                submitted: Task = submission["task"]
                # fence against stale leases on the *current* task state, not
                # the (possibly outdated) copy the client sent along.
                current = task_updates.get(submitted.id) \
                    or self.store.task(submitted.id)
                attempt = submission.get("attempt")
                if (current.status != TaskStatus.RUNNING.value
                        or current.assigned_to != contributor.contributor_key
                        or (attempt is not None and int(attempt) != current.attempts)):
                    records.append(None)
                    counters["results.stale"] = counters.get("results.stale", 0) + 1
                    if current.trace_id:
                        span_buffer.append({
                            "name": "submit", "trace_id": current.trace_id,
                            "task": current.id, "outcome": "stale",
                            "attempt": attempt,
                        })
                    log_buffer.append(("warning", "result.stale", {
                        "task": current.id, "trace_id": current.trace_id,
                        "attempt": attempt, "task_status": current.status,
                    }))
                    continue
                error = submission.get("error")
                record = ResultRecord(
                    task_id=current.id,
                    experiment_id=current.experiment_id,
                    contributor_key=contributor.contributor_key,
                    dbms_label=current.dbms_label,
                    host_name=current.host_name,
                    query_sql=current.query_sql,
                    times=submission["times"],
                    error=error,
                    load_averages=submission.get("load_averages") or {},
                    extras=submission.get("extras") or {},
                    idempotency_key=key,
                )
                if current.trace_id is None:
                    current.trace_id = new_trace_id()
                if error is None:
                    current.status = TaskStatus.DONE.value
                    outcome = "done"
                elif current.attempts >= current.max_attempts:
                    current.status = TaskStatus.DEAD_LETTER.value
                    current.last_error = error
                    counters["tasks.dead_lettered"] = \
                        counters.get("tasks.dead_lettered", 0) + 1
                    outcome = "dead_letter"
                else:
                    current.status = TaskStatus.PENDING.value
                    current.assigned_to = None
                    current.assigned_at = None
                    current.last_error = error
                    counters["tasks.retried"] = counters.get("tasks.retried", 0) + 1
                    outcome = "retried"
                profile = record.extras.get("profile") \
                    if isinstance(record.extras, dict) else None
                if isinstance(record.extras, dict):
                    # driver-side span records ride along in the extras;
                    # ingesting them gives the server's recorder (and the
                    # flight entries built from it) the full cross-process
                    # timeline of this task.
                    shipped = record.extras.get("spans")
                    if isinstance(shipped, list):
                        ingest_buffer.extend(
                            span for span in shipped
                            if isinstance(span, dict) and span.get("trace_id"))
                span_buffer.append({
                    "name": "submit", "trace_id": current.trace_id,
                    "task": current.id, "attempt": current.attempts,
                    "outcome": outcome, "dedup": False,
                    "rows": (profile or {}).get("rows"),
                    "error": error,
                })
                log_buffer.append(("info", "result.accepted", {
                    "task": current.id, "trace_id": current.trace_id,
                    "attempt": current.attempts, "outcome": outcome,
                    "contributor": contributor.nickname,
                }))
                if outcome == "retried":
                    log_buffer.append(("warning", "task.retried", {
                        "task": current.id, "trace_id": current.trace_id,
                        "attempt": current.attempts, "reason": "error_result",
                        "error": error,
                    }))
                elif outcome == "dead_letter":
                    log_buffer.append(("error", "task.dead_lettered", {
                        "task": current.id, "trace_id": current.trace_id,
                        "attempt": current.attempts, "error": error,
                    }))
                if outcome in ("done", "dead_letter"):
                    flight_buffer.append((current, outcome))
                records.append(record)
                inserts.append(record)
                task_updates[current.id] = current
                if key:
                    idempotency.append((key, record))
                counters["results.accepted"] = counters.get("results.accepted", 0) + 1
                if error is not None:
                    counters["results.failed"] = counters.get("results.failed", 0) + 1
                elif record.times:
                    best_seconds.append(min(record.times))
                # keep the caller's Task copy in sync with the persisted state
                # (older call sites read task.status off the object they passed).
                submission["synced"] = (submitted, current)
            self.store.apply_batch(
                inserts=[("results", record) for record in inserts],
                updates=[("tasks", task) for task in task_updates.values()],
                idempotency=idempotency,
            )
            for submission in prepared:
                synced = submission.get("synced")
                if synced is not None and synced[0] is not synced[1]:
                    synced[0].__dict__.update(synced[1].__dict__)

        # the batch committed: flush the buffered telemetry.  Submit spans
        # share the batch's window (arrival -> commit) on the timeline.
        if self.spans.enabled:
            # a retried submission re-ships every span the driver recorded
            # for the task so far; ingest each span record exactly once
            # (checking only against the same trace keeps this off the
            # O(capacity) path).
            seen: dict[str, set] = {}
            fresh: list[dict] = []
            for shipped in ingest_buffer:
                trace_id = shipped.get("trace_id")
                ids = seen.get(trace_id)
                if ids is None:
                    ids = seen[trace_id] = {
                        span.get("span_id")
                        for span in self.spans.spans(trace_id)}
                if shipped.get("span_id") in ids:
                    continue
                ids.add(shipped.get("span_id"))
                fresh.append(shipped)
            self.spans.extend(fresh)
            for buffered in span_buffer:
                name = buffered.pop("name")
                trace_id = buffered.pop("trace_id")
                attributes = {key: value for key, value in buffered.items()
                              if value is not None}
                self.spans.record(name, trace_id, start=batch_started,
                                  **attributes)
        for level, event, fields in log_buffer:
            self.log.log(level, event,
                         **{key: value for key, value in fields.items()
                            if value is not None})
        now = time.time()
        for task, outcome in flight_buffer:
            self._record_flight(task, outcome, now)
        for name, amount in counters.items():
            self.metrics.counter(name).inc(amount)
        timings = self.metrics.histogram("results.best_seconds")
        for value in best_seconds:
            timings.observe(value)
        return records

    def set_result_hidden(self, acting: User, result: ResultRecord, hidden: bool) -> ResultRecord:
        """Owner-only: hide a result pending clarification ("keep these results private")."""
        experiment = self.store.experiment(result.experiment_id)
        project = self.store.project(experiment.project_id)
        self._require_owner(acting, project)
        result.hidden = hidden
        self.store.update("results", result)
        return result

    def results(self, experiment: Experiment, viewer: User | None = None,
                include_hidden: bool = False) -> list[ResultRecord]:
        """Results of an experiment, respecting visibility rules."""
        project = self.store.project(experiment.project_id)
        if not self._can_read(viewer, project):
            raise AccessDenied("this project is private")
        records = self.store.results(experiment.id)
        if include_hidden and viewer is not None and self._is_member(viewer, project):
            return records
        return [record for record in records if not record.hidden]

    def export_results_csv(self, experiment: Experiment, viewer: User | None = None) -> str:
        """CSV export of an experiment's results ("exported in CSV for post-processing")."""
        import csv
        import io

        records = self.results(experiment, viewer=viewer)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["result_id", "task_id", "dbms", "host", "query",
                         "best_seconds", "times", "error"])
        for record in records:
            writer.writerow([
                record.id, record.task_id, record.dbms_label, record.host_name,
                record.query_sql, record.best,
                ";".join(f"{value:.6f}" for value in record.times), record.error or "",
            ])
        return buffer.getvalue()

    # ----------------------------------------------------- pool morphing helper

    def grow_pool(self, experiment: Experiment, pool: QueryPool, steps: int,
                  strategy: str | None = None, seed: int | None = None) -> int:
        """Morph the pool ``steps`` times using the experiment's stored guidance."""
        guidance = Guidance.from_dict(experiment.guidance)
        morpher = Morpher(pool, guidance=guidance, seed=seed)
        chosen = Strategy(strategy) if strategy else None
        return len(morpher.run(steps, strategy=chosen))

    # ------------------------------------------------------------ access control

    def _require_owner(self, user: User, project: Project) -> None:
        if user is None or user.id != project.owner_id:
            raise AccessDenied("only the project owner may perform this operation")

    def _require_contributor(self, user: User, project: Project) -> None:
        if user is None or not self._is_member(user, project):
            raise AccessDenied("only project contributors may perform this operation")

    def _is_member(self, user: User, project: Project) -> bool:
        return user is not None and (
            user.id == project.owner_id or user.id in project.contributor_ids
        )

    def _can_read(self, user: User | None, project: Project) -> bool:
        if project.is_public():
            return True
        return user is not None and self._is_member(user, project)
