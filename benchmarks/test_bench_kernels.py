"""Kernel-compilation benchmark: compiled kernels + selection vectors vs the
recursive interpreters, on both engines.

The driver executes every pool query five-plus times per target system over a
prepared plan; compiled kernels hang off that cached plan, so the repetition
loop pays near-zero per-tuple dispatch.  This benchmark quantifies the warm
speedup on the paper's running examples -- TPC-H Q1 (aggregation-heavy, the
row engine's worst case for per-row interpretation) and Q6 (scan-dominated,
the column engine's selection-vector showcase) -- for both engines in both
modes, and acts as the CI perf-regression gate: the warm speedup of the
compiled configuration must not drop below ``KERNEL_BENCH_MIN_SPEEDUP``
(default 1.3x) on Q1/row and Q6/column.

A run writes ``BENCH_kernels.json`` (into ``BENCH_ARTIFACT_DIR`` or the
current directory) so CI can track the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import ColumnEngine, EngineOptions, RowEngine
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database

#: committed regression threshold for the gated (query, engine) pairs.
MIN_SPEEDUP = float(os.environ.get("KERNEL_BENCH_MIN_SPEEDUP", "1.3"))

#: (query id, engine kind, repetitions per timing loop, gated?)
MATRIX = [
    (1, "row", 6, True),
    (6, "row", 6, False),
    (1, "column", 25, False),
    (6, "column", 60, True),
]

# workers pinned to 1: this gate measures single-threaded kernel speedups;
# morsel parallelism has its own gate (test_bench_parallel.py).
INTERPRETED = EngineOptions(compile_expressions=False, selection_vectors=False,
                            workers=1)
COMPILED = EngineOptions(compile_expressions=True, selection_vectors=True,
                         workers=1)


@pytest.fixture(scope="module")
def tpch_db():
    return build_tpch_database(scale_factor=0.001)


def _make_engine(kind: str, database, options: EngineOptions):
    factory = RowEngine if kind == "row" else ColumnEngine
    return factory(database, options=options)


def _warm_seconds(engine, sql: str, repetitions: int, rounds: int = 3) -> float:
    """Best per-execution time over ``rounds`` timing loops of a prepared plan."""
    plan = engine.prepare(sql)
    engine.execute(plan)  # warm: kernels, columnar views, caches
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            engine.execute(plan)
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def _frames_per_execution(engine, sql: str) -> int:
    plan = engine.prepare(sql)
    engine.execute(plan)
    result = engine.execute(plan)
    return int(result.metrics.get("frame.materialisations"))


def test_compiled_kernels_beat_interpretation(tpch_db, benchmark, run_once):
    """Compiled kernels must keep their warm speedup on the gated hot paths."""
    entries = []
    gated_failures = []
    for query_id, kind, repetitions, gated in MATRIX:
        sql = QUERIES[query_id]
        interpreted = _warm_seconds(_make_engine(kind, tpch_db, INTERPRETED), sql,
                                    repetitions)
        compiled_engine = _make_engine(kind, tpch_db, COMPILED)
        if (query_id, kind) == (1, "row"):
            # time one loop under pytest-benchmark for the harness report
            plan = compiled_engine.prepare(sql)
            compiled_engine.execute(plan)
            run_once(benchmark, lambda: [compiled_engine.execute(plan)
                                         for _ in range(repetitions)])
        compiled = _warm_seconds(compiled_engine, sql, repetitions)
        speedup = interpreted / compiled if compiled else float("inf")
        entries.append({
            "query": f"tpch-q{query_id}",
            "engine": kind,
            "repetitions": repetitions,
            "interpreted_seconds": interpreted,
            "compiled_seconds": compiled,
            "speedup": speedup,
            "gated": gated,
        })
        print(f"Q{query_id} {kind}: interpreted={interpreted * 1000:.3f}ms "
              f"compiled={compiled * 1000:.3f}ms speedup={speedup:.2f}x")
        if gated and speedup < MIN_SPEEDUP:
            gated_failures.append(
                f"Q{query_id}/{kind}: {speedup:.2f}x < {MIN_SPEEDUP}x")

    selection_frames = _frames_per_execution(
        _make_engine("column", tpch_db, COMPILED), QUERIES[6])
    masked_frames = _frames_per_execution(
        _make_engine("column", tpch_db, INTERPRETED), QUERIES[6])

    artifact = {
        "min_speedup": MIN_SPEEDUP,
        "entries": entries,
        "q6_colframe_materialisations": {
            "selection_vectors": selection_frames,
            "masked": masked_frames,
        },
    }
    target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_kernels.json"
    target.write_text(json.dumps(artifact, indent=2))

    # the selection-vector path allocates no intermediate frame per predicate:
    # Q6 costs exactly one scan frame plus one result frame.
    assert selection_frames == 2
    assert masked_frames > selection_frames
    assert not gated_failures, "; ".join(gated_failures)
