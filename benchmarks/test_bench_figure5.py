"""Figure 5: the query-sqalpel page (baseline query and its derived grammar)."""

from repro.analytics import grammar_view
from repro.core import parse_grammar


def test_figure5_grammar_page(benchmark, run_once, demo):
    grammar = parse_grammar(demo.experiment.grammar_text, name=demo.experiment.name)
    page = run_once(benchmark, grammar_view, demo.experiment.baseline_sql, grammar)
    print("\n=== Figure 5: query sqalpel page ===")
    print(f"baseline : {page['baseline'][:100]}...")
    print(f"rules    : {page['rules']} ({page['lexical_rules']} lexical)")
    print(f"tags     : {page['tags']}  templates: {page['templates']}  space: {page['space']}")
    print(page["grammar"])
    assert page["rules"] >= 7
    assert page["tags"] >= 10
    assert int(page["templates"].lstrip(">").rstrip("K")) > 0
