"""Table 2: TPC-H query-space sizes (tags / templates / space per query).

The template cap used here is lower than the paper's 100K so the whole table
regenerates in seconds; queries that exceed the cap are reported the way the
paper prints them (``>NK`` and ``-``), which is exactly what happens to Q7 and
Q19 in the original table.
"""

from repro.reports import PAPER_TABLE2, table2_rows, table2_text

LIMIT = 5_000


def test_table2_tpch_query_space(benchmark, run_once):
    rows = run_once(benchmark, table2_rows, LIMIT)
    assert len(rows) == 22
    print(f"\n=== Table 2: TPC-H query space (template cap {LIMIT}) ===")
    print(table2_text(limit=LIMIT))

    by_query = {name: (tags, templates, space) for name, tags, templates, space in rows}
    # Shape checks mirroring the paper: tiny spaces for Q6/Q14, a combinatorial
    # explosion for Q7/Q19 (cap exceeded), and orders-of-magnitude variation.
    assert int(by_query["Q6"][2]) < 100
    assert int(by_query["Q14"][2]) < 100
    assert by_query["Q19"][1].startswith(">")
    assert by_query["Q7"][1].startswith(">")
    measurable = [int(space) for _, _, templates, space in rows if space != "-"]
    assert max(measurable) > 1000 * min(measurable)
    assert set(PAPER_TABLE2) == set(range(1, 23))
