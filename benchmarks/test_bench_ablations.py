"""Ablation benches for the design choices called out in DESIGN.md.

* row vs column engine on an expression-heavy aggregation (TPC-H Q1) and on a
  selective scan (TPC-H Q6) -- the two performance profiles whose contrast
  the discriminative walk is meant to surface,
* overflow-guarded vs plain expression evaluation on the column engine (the
  MonetDB sum_charge anecdote),
* predicate push-down on vs off for the row engine,
* guided pool expansion vs brute-force random generation (RAGS-style) --
  measured as distinct queries produced per generation attempt.
"""

import pytest

from repro.engine import ColumnEngine, EngineOptions, RowEngine
from repro.pool.morph import Morpher
from repro.pool.pool import QueryPool
from repro.sqlparser import extract_grammar
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database


@pytest.fixture(scope="module")
def database():
    return build_tpch_database(0.001)


@pytest.mark.parametrize("query_id", [1, 6])
def test_ablation_row_engine(benchmark, database, query_id):
    engine = RowEngine(database)
    result = benchmark.pedantic(engine.execute, args=(QUERIES[query_id],),
                                rounds=3, iterations=1)
    assert len(result.rows) >= 1


@pytest.mark.parametrize("query_id", [1, 6])
def test_ablation_column_engine(benchmark, database, query_id):
    engine = ColumnEngine(database)
    result = benchmark.pedantic(engine.execute, args=(QUERIES[query_id],),
                                rounds=3, iterations=1)
    assert len(result.rows) >= 1


@pytest.mark.parametrize("guarded", [False, True], ids=["plain", "overflow-guard"])
def test_ablation_overflow_guard(benchmark, database, guarded):
    engine = ColumnEngine(database, version="guard" if guarded else "plain",
                          options=EngineOptions(overflow_guard=guarded))
    result = benchmark.pedantic(engine.execute, args=(QUERIES[1],), rounds=3, iterations=1)
    assert len(result.rows) >= 1


@pytest.mark.parametrize("pushdown", [True, False], ids=["pushdown", "no-pushdown"])
def test_ablation_predicate_pushdown(benchmark, database, pushdown):
    engine = RowEngine(database, version="pd" if pushdown else "nopd",
                       options=EngineOptions(predicate_pushdown=pushdown))
    result = benchmark.pedantic(engine.execute, args=(QUERIES[3],), rounds=2, iterations=1)
    assert len(result.rows) >= 1


def test_ablation_guided_vs_random_generation(benchmark):
    """Guided morphing should waste fewer attempts on duplicates than random draws."""
    grammar = extract_grammar(QUERIES[1])

    def guided() -> tuple[int, int]:
        pool = QueryPool(grammar, seed=3)
        pool.seed_baseline()
        morpher = Morpher(pool, seed=3)
        attempts = 60
        morpher.run(attempts)
        return len(pool), attempts

    size, attempts = benchmark.pedantic(guided, rounds=1, iterations=1)

    random_pool = QueryPool(grammar, seed=3)
    random_pool.seed_random(60)
    print(f"\nguided walk: {size} distinct queries from {attempts} attempts; "
          f"random draws: {len(random_pool)} distinct from 60 attempts")
    assert size > 1
