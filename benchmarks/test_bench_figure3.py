"""Figure 3: query speedup distribution between two database sizes.

The paper compares SF-1 against an instance ten times larger and observes the
baseline factor (~8x) widen to a spread (8-14x) across the query variants.
Here the column engine runs the same Q1 pool on two instances whose sizes
differ by 8x; the spread of per-variant slowdown factors is printed and must
straddle the baseline factor.
"""

import pytest
from repro.analytics import speedup_report
from repro.pool.morph import Morpher
from repro.pool.pool import QueryPool
from repro.sqlparser import extract_grammar
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database, run_experiment_on_engines
from repro.engine import ColumnEngine, EngineOptions

# The spread this figure reproduces comes from per-variant evaluation cost;
# the compiled-kernel path makes variants so uniform (and so fast that fixed
# per-query overhead dominates at this tiny scale) that the distribution
# collapses to the noise floor.  Pin the engine version whose cost profile
# the figure is about.
INTERPRETED = EngineOptions(compile_expressions=False, selection_vectors=False)


@pytest.fixture(scope="module")
def scaled_pool():
    small = ColumnEngine(build_tpch_database(0.0005), name="columnstore",
                         version="sf-small", options=INTERPRETED)
    large = ColumnEngine(build_tpch_database(0.004), name="columnstore",
                         version="sf-large", options=INTERPRETED)
    pool = QueryPool(extract_grammar(QUERIES[1]), seed=5)
    pool.seed_baseline()
    pool.seed_random(4)
    Morpher(pool, seed=5).grow_to(10)
    # the small instance runs in ~100us per query, so best-of-N needs a few
    # more repetitions than the driver default to sit below the noise floor.
    run_experiment_on_engines(pool, [small, large], repeats=5)
    return pool, small.label, large.label


def test_figure3_speedup_distribution(benchmark, run_once, scaled_pool):
    pool, small_label, large_label = scaled_pool
    report = run_once(benchmark, speedup_report, pool, small_label, large_label)
    print(f"\n=== Figure 3: slowdown of {large_label} relative to {small_label} ===")
    for point in report.points:
        print(f"  factor={point.factor:6.2f}x size={point.size:2d} origin={point.origin:7s} "
              f"{point.sql[:70]}")
    low, high = report.spread()
    baseline = report.baseline_factor
    print(f"baseline factor={baseline}, spread={low:.2f}x .. {high:.2f}x")
    assert len(report.points) >= 5
    # the larger instance must be slower, and the variants must show a spread
    # around the baseline factor rather than a single constant.
    assert report.median() > 1.0
    assert high > low
    # the variants must differ by more than timer noise; the bound sits just
    # under the tightest spread observed across quiet runs (~1.2x).
    assert high / low > 1.15
