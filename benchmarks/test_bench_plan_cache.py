"""Plan-cache benchmark: plan-once/execute-many vs. cold planning per repetition.

The driver executes every pool query five-plus times per target system; this
benchmark quantifies what the keyed plan cache buys on that loop for a TPC-H
pool query, and verifies that the row and column engines produce
byte-identical results through the shared plan IR for the tier-1 query set.

A smoke run writes ``BENCH_plan_cache.json`` (into ``BENCH_ARTIFACT_DIR`` or
the current directory) so CI can track the perf trajectory from this PR
onward.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import ColumnEngine, RowEngine
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database

from tests.conftest import normalise


@pytest.fixture(scope="module")
def tpch_db():
    return build_tpch_database(scale_factor=0.001)

#: the tier-1 agreement subset (mirrors tests/test_engine.py).
TPCH_SUBSET = [1, 3, 5, 6, 10, 12, 13, 14, 16]

REPETITIONS = 25


def _timed_loop(engine, sql: str, repetitions: int) -> float:
    started = time.perf_counter()
    for _ in range(repetitions):
        engine.execute(sql)
    return time.perf_counter() - started


def test_plan_cache_speeds_up_repeated_execution(tpch_db, benchmark, run_once):
    """Repeated execution with the plan cache beats cold planning every time."""
    sql = QUERIES[1]  # the paper's running example
    cold_engine = ColumnEngine(tpch_db, plan_cache_size=0)
    warm_engine = ColumnEngine(tpch_db)

    # warm-up both paths once (first-touch columnar views, imports, ...)
    cold_engine.execute(sql)
    warm_engine.execute(sql)

    cold = min(_timed_loop(cold_engine, sql, REPETITIONS) for _ in range(3))
    warm_first = run_once(benchmark, _timed_loop, warm_engine, sql, REPETITIONS)
    warm = min([warm_first] + [_timed_loop(warm_engine, sql, REPETITIONS)
                               for _ in range(2)])

    stats = warm_engine.cache_stats()
    speedup = cold / warm if warm else float("inf")
    print("\n=== Plan cache: TPC-H Q1, plan-once/execute-many ===")
    print(f"repetitions={REPETITIONS} cold={cold:.4f}s warm={warm:.4f}s "
          f"speedup={speedup:.2f}x cache={stats}")

    artifact = {
        "query": "tpch-q1",
        "repetitions": REPETITIONS,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": speedup,
        "cache_stats": stats,
    }
    target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_plan_cache.json"
    target.write_text(json.dumps(artifact, indent=2))

    assert stats["hits"] >= REPETITIONS
    # the acceptance bar: caching must be measurably faster than cold planning.
    assert warm < cold, f"plan cache not faster: warm={warm:.4f}s cold={cold:.4f}s"


def _canonical_bytes(rows) -> bytes:
    """Serialise rows with numerics canonicalised (5 and 5.0 render alike)."""
    canonical = [
        tuple(round(float(value), 2) if isinstance(value, (int, float))
              and not isinstance(value, bool) else value
              for value in row)
        for row in normalise(rows)
    ]
    return repr(canonical).encode()


def test_row_and_column_byte_identical_through_plan_ir(tpch_db):
    """Both engines agree byte-for-byte through the shared plan IR (tier-1 set)."""
    row_engine = RowEngine(tpch_db)
    column_engine = ColumnEngine(tpch_db)
    for query_id in TPCH_SUBSET:
        sql = QUERIES[query_id]
        row_result = row_engine.execute(row_engine.prepare(sql))
        column_result = column_engine.execute(column_engine.prepare(sql))
        assert row_result.columns == column_result.columns, f"Q{query_id} columns differ"
        assert _canonical_bytes(row_result.rows) == _canonical_bytes(column_result.rows), \
            f"Q{query_id} rows differ through the plan IR"
