"""Figure 2: principal components / dominant lexical terms of the Q1 space."""

from repro.analytics import component_report


def test_figure2_dominant_components(benchmark, run_once, demo):
    row_label = demo.engines[0].label
    report = run_once(benchmark, component_report, demo.pool, row_label)
    print(f"\n=== Figure 2: dominant lexical components on {row_label} ===")
    for contribution in report.dominant(top=8):
        print(f"  {contribution.term[:60]:<60} marginal={contribution.marginal_cost:+.4f}s "
              f"(n={contribution.queries_with_term})")
    if report.explained_variance:
        print(f"  PCA explained variance: "
              f"{[round(value, 3) for value in report.explained_variance]}")
    assert report.contributions, "expected at least one measured term"
    dominant = report.dominant_term()
    assert dominant is not None
    # The paper singles out the sum_charge expression as Q1's dominant term on
    # MonetDB; on the tuple-at-a-time engine an expression-heavy projection
    # term must likewise rank above the cheapest term.
    cheapest = min(report.contributions, key=lambda entry: entry.marginal_cost)
    best = max(report.contributions, key=lambda entry: entry.marginal_cost)
    assert best.marginal_cost >= cheapest.marginal_cost
