"""Storage-subsystem benchmark: zone-map chunk skipping + dictionary codes.

On date-clustered lineitem data (chunks cover disjoint ship-date ranges, the
layout a warehouse ingesting by arrival time produces) a selective TPC-H
Q6-style scan touches only a handful of chunks; with ``zone_maps`` enabled
the column executor refutes the rest from per-chunk min/max statistics
before the selection vector is even built.  This benchmark quantifies that
warm speedup and acts as the CI storage-regression gate: zone maps on vs off
must stay above ``STORAGE_BENCH_MIN_SPEEDUP`` (default 2x).  A second,
ungated entry reports the dictionary-code evaluation speedup on a string
IN-scan.

A run writes ``BENCH_storage.json`` (into ``BENCH_ARTIFACT_DIR`` or the
current directory) with the measured times, the chunk scan/skip counts and
the per-table compression summary, so CI can track the storage trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.data import populate_tpch
from repro.engine import ColumnEngine, Database, EngineOptions

#: committed regression threshold for the zone-map gate.
MIN_SPEEDUP = float(os.environ.get("STORAGE_BENCH_MIN_SPEEDUP", "2.0"))

SCALE_FACTOR = 0.02
CHUNK_ROWS = 2048

#: Q6-style selective scan: a three-month ship-date window over seven years
#: of clustered data -- zone maps should refute the vast majority of chunks.
Q6_NARROW = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1994-04-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24
"""

#: dictionary showcase: an IN-scan over a 7-value string column.
SHIPMODE_IN = """
select count(*) as n
from lineitem
where l_shipmode in ('AIR', 'REG AIR')
  and l_quantity < 30
"""


@pytest.fixture(scope="module")
def clustered_db() -> Database:
    database = Database("tpch-clustered", chunk_rows=CHUNK_ROWS)
    populate_tpch(database, scale_factor=SCALE_FACTOR, clustered=True)
    return database


def _warm_seconds(engine, sql: str, repetitions: int = 40, rounds: int = 3) -> float:
    """Best per-execution time over ``rounds`` timing loops of a prepared plan."""
    plan = engine.prepare(sql)
    engine.execute(plan)  # warm: kernels, columnar views, zone index
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            engine.execute(plan)
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def _chunk_counts(engine, sql: str) -> dict[str, int]:
    """Chunk scan/skip counts of one warm execution."""
    plan = engine.prepare(sql)
    engine.execute(plan)
    result = engine.execute(plan)
    return {
        "chunks_scanned": int(result.metrics.get("scan.chunks_scanned")),
        "chunks_skipped": int(result.metrics.get("scan.chunks_skipped")),
    }


def test_zone_maps_skip_clustered_scan(clustered_db, benchmark, run_once):
    """Zone-map chunk skipping must keep its warm speedup on the gated scan."""
    # workers pinned to 1: the zone-map gate measures single-threaded skipping.
    zone_on = ColumnEngine(clustered_db, options=EngineOptions(workers=1))
    zone_off = ColumnEngine(clustered_db,
                            options=EngineOptions(zone_maps=False, workers=1))
    dict_on = ColumnEngine(clustered_db, options=EngineOptions(workers=1))
    dict_off = ColumnEngine(clustered_db,
                            options=EngineOptions(dictionary_encoding=False,
                                                  workers=1))

    # identical results first: skipping must never change semantics.
    assert zone_on.execute(Q6_NARROW).rows == zone_off.execute(Q6_NARROW).rows
    assert dict_on.execute(SHIPMODE_IN).rows == dict_off.execute(SHIPMODE_IN).rows

    counts = _chunk_counts(zone_on, Q6_NARROW)
    plan = zone_on.prepare(Q6_NARROW)
    run_once(benchmark, lambda: zone_on.execute(plan))

    on_seconds = _warm_seconds(zone_on, Q6_NARROW)
    off_seconds = _warm_seconds(zone_off, Q6_NARROW)
    zone_speedup = off_seconds / on_seconds if on_seconds else float("inf")

    dict_on_seconds = _warm_seconds(dict_on, SHIPMODE_IN)
    dict_off_seconds = _warm_seconds(dict_off, SHIPMODE_IN)
    dict_speedup = dict_off_seconds / dict_on_seconds if dict_on_seconds \
        else float("inf")

    lineitem = clustered_db.storage("lineitem").statistics()
    artifact = {
        "min_speedup": MIN_SPEEDUP,
        "scale_factor": SCALE_FACTOR,
        "chunk_rows": CHUNK_ROWS,
        "entries": [
            {
                "query": "q6-narrow",
                "feature": "zone_maps",
                "on_seconds": on_seconds,
                "off_seconds": off_seconds,
                "speedup": zone_speedup,
                "gated": True,
                **counts,
            },
            {
                "query": "shipmode-in",
                "feature": "dictionary_encoding",
                "on_seconds": dict_on_seconds,
                "off_seconds": dict_off_seconds,
                "speedup": dict_speedup,
                "gated": False,
            },
        ],
        "lineitem": lineitem.describe(),
    }
    target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_storage.json"
    target.write_text(json.dumps(artifact, indent=2))

    total_chunks = counts["chunks_scanned"] + counts["chunks_skipped"]
    print(f"zone maps: on={on_seconds * 1000:.3f}ms off={off_seconds * 1000:.3f}ms "
          f"speedup={zone_speedup:.2f}x "
          f"({counts['chunks_skipped']}/{total_chunks} chunks skipped)")
    print(f"dictionary: on={dict_on_seconds * 1000:.3f}ms "
          f"off={dict_off_seconds * 1000:.3f}ms speedup={dict_speedup:.2f}x")

    # the clustered window really is skippable, and skipping really pays.
    assert counts["chunks_skipped"] > total_chunks // 2
    assert zone_speedup >= MIN_SPEEDUP, (
        f"zone-map speedup {zone_speedup:.2f}x < {MIN_SPEEDUP}x")
