"""Null-mask benchmark: typed (values, validity) scans vs object arrays.

Nullable columns used to decode to object arrays holding ``None`` -- correct,
but every kernel dropped from numpy bulk operations to Python-object loops.
With ``null_masks`` enabled the scan keeps nullable typed columns on their
native int64/float64 arrays plus a validity mask, so a NULL-riddled Q6-style
scan runs the same vectorised kernels as a NULL-free one.

This benchmark loads a lineitem variant with NULLs injected into the Q6
columns (discount, quantity, ship date), measures the warm per-execution
time with ``null_masks`` on vs off (same storage, different scan views), and
acts as the CI regression gate: the speedup must stay above
``NULL_BENCH_MIN_SPEEDUP`` (default 1.5x).

A run writes ``BENCH_null_masks.json`` (into ``BENCH_ARTIFACT_DIR`` or the
current directory) with the measured times and the null fractions measured
from the table statistics.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.data import populate_tpch
from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine

#: committed regression threshold for the null-mask gate.
MIN_SPEEDUP = float(os.environ.get("NULL_BENCH_MIN_SPEEDUP", "1.5"))

SCALE_FACTOR = 0.02
CHUNK_ROWS = 2048
NULL_FRACTION = 0.08
SEED = 20260730

#: Q6 variant over the NULL-injected columns: every predicate and the
#: projected product run over nullable discount/quantity/shipdate.
Q6_NULLABLE = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24
"""


@pytest.fixture(scope="module")
def nullable_db() -> Database:
    """A lineitem copy with ~8% NULLs in the Q6 columns."""
    source = Database("tpch-source", chunk_rows=CHUNK_ROWS)
    populate_tpch(source, scale_factor=SCALE_FACTOR)
    schema = source.catalog.table("lineitem")
    positions = {column.name.lower(): index
                 for index, column in enumerate(schema.columns)}
    nullable = [positions["l_discount"], positions["l_quantity"],
                positions["l_shipdate"]]
    rng = random.Random(SEED)
    rows = []
    for row in source.rows("lineitem"):
        values = list(row)
        for position in nullable:
            if rng.random() < NULL_FRACTION:
                values[position] = None
        rows.append(tuple(values))

    database = Database("tpch-nullable", chunk_rows=CHUNK_ROWS)
    database.create_table(
        "lineitem", [(column.name, column.type_name) for column in schema.columns])
    database.insert_rows("lineitem", rows)
    return database


def _warm_seconds(engine, sql: str, repetitions: int = 30, rounds: int = 3) -> float:
    """Best per-execution time over ``rounds`` timing loops of a prepared plan."""
    plan = engine.prepare(sql)
    engine.execute(plan)  # warm: kernels, columnar views, zone index
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            engine.execute(plan)
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def test_null_mask_scan_beats_object_arrays(nullable_db, benchmark, run_once):
    """Typed null-mask scans must keep their warm speedup on nullable Q6."""
    # workers pinned to 1: this gate measures the single-threaded scan paths.
    masked = ColumnEngine(nullable_db, options=EngineOptions(workers=1))
    legacy = ColumnEngine(nullable_db,
                          options=EngineOptions(null_masks=False, workers=1))
    row_reference = RowEngine(nullable_db)

    # representation must never change semantics: typed pairs, object
    # arrays and the row engine agree on the NULL-riddled scan.
    expected = row_reference.execute(Q6_NULLABLE).rows
    assert masked.execute(Q6_NULLABLE).rows == expected
    assert legacy.execute(Q6_NULLABLE).rows == expected

    plan = masked.prepare(Q6_NULLABLE)
    run_once(benchmark, lambda: masked.execute(plan))

    on_seconds = _warm_seconds(masked, Q6_NULLABLE)
    off_seconds = _warm_seconds(legacy, Q6_NULLABLE)
    speedup = off_seconds / on_seconds if on_seconds else float("inf")

    statistics = nullable_db.storage("lineitem").statistics()
    null_fractions = {
        name: statistics.column(name).null_count / statistics.row_count
        for name in ("l_discount", "l_quantity", "l_shipdate")
    }

    artifact = {
        "min_speedup": MIN_SPEEDUP,
        "scale_factor": SCALE_FACTOR,
        "chunk_rows": CHUNK_ROWS,
        "null_fraction": NULL_FRACTION,
        "entries": [
            {
                "query": "q6-nullable",
                "feature": "null_masks",
                "on_seconds": on_seconds,
                "off_seconds": off_seconds,
                "speedup": speedup,
                "gated": True,
                "null_fractions": null_fractions,
            },
        ],
    }
    target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_null_masks.json"
    target.write_text(json.dumps(artifact, indent=2))

    print(f"null masks: on={on_seconds * 1000:.3f}ms off={off_seconds * 1000:.3f}ms "
          f"speedup={speedup:.2f}x (nulls ~{NULL_FRACTION:.0%} in Q6 columns)")

    assert speedup >= MIN_SPEEDUP, (
        f"null-mask speedup {speedup:.2f}x < {MIN_SPEEDUP}x")
