"""Figure 1: the sample SQALPEL grammar and the space it spans."""

from repro.core import enumerate_templates, parse_grammar, space_report
from repro.core.dsl import FIGURE1_GRAMMAR


def test_figure1_sample_grammar(benchmark, run_once):
    grammar = parse_grammar(FIGURE1_GRAMMAR, name="figure1")
    report = run_once(benchmark, space_report, grammar)
    print("\n=== Figure 1: sample sqalpel grammar ===")
    print(FIGURE1_GRAMMAR)
    print(f"rules={len(grammar)} tags={report.tags} templates={report.templates} "
          f"space={report.space}")
    for template in enumerate_templates(grammar):
        print(f"  template: {template.text()}")
    assert len(grammar) == 7
    assert report.templates == 10 and report.space == 32
