"""Figure 6: the query-pool page (pool contents, strategies, guidance)."""

from repro.analytics import pool_view
from repro.pool import Guidance


def test_figure6_query_pool_page(benchmark, run_once, demo):
    guidance = Guidance.from_dict(demo.experiment.guidance)
    page = run_once(benchmark, pool_view, demo.pool, guidance)
    print("\n=== Figure 6: query pool page ===")
    print(f"pool size : {page['size']} (templates available: {page['templates']})")
    print(f"by origin : {page['by_origin']}")
    print(f"errors    : {page['errors']}")
    print(f"guidance  : {page['guidance']}")
    for entry in page["queries"]:
        print(f"  [{entry['sequence']:3d}] {entry['origin']:7s} size={entry['size']:2d} "
              f"{entry['sql'][:80]}")
    assert page["size"] == len(demo.pool)
    assert page["by_origin"].get("seed", 0) >= 1
    assert sum(page["by_origin"].values()) == page["size"]
