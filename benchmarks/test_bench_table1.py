"""Table 1: TPC benchmark reports (counts of publicly accessible results)."""

from repro.reports import table1_rows, table1_text
from repro.reports.tpc_results import observations


def test_table1_tpc_benchmark_reports(benchmark, run_once):
    rows = run_once(benchmark, table1_rows)
    assert len(rows) == 14
    facts = observations()
    print("\n=== Table 1: TPC benchmarks (http://www.tpc.org/) ===")
    print(table1_text())
    print(f"\nobservations: {facts}")
    # the paper's point: results are scarce and concentrated on few vendors
    assert facts["benchmarks_without_any_report"] >= 4
    assert facts["max_reports_single_benchmark"] == 368
