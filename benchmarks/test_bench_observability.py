"""Observability overhead benchmark: tracing must be free when it's off.

The metrics context and the ``trace is None`` checks ride on every execution,
so this benchmark gates their cost: the warm per-execution time of the full
``Engine.execute`` path (metrics context, phase timings, null-span checks,
result assembly) must stay within ``OBS_BENCH_MAX_OVERHEAD`` (default 5%) of
executing the bare physical plan on the paper's running examples -- TPC-H Q1
on the row engine and Q6 on the column engine.  The overhead of actually
*enabling* span collection is recorded informationally alongside.

A run writes ``BENCH_observability.json`` plus a sample EXPLAIN ANALYZE span
tree (``BENCH_observability_trace.json``) into ``BENCH_ARTIFACT_DIR`` or the
current directory, so CI archives a real trace next to the numbers.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.engine import ColumnEngine, EngineOptions, RowEngine
from repro.engine.result import QueryResult
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database

#: committed ceiling on the relative overhead of the tracing-disabled path.
MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.05"))

#: (query id, engine kind, samples per contestant)
MATRIX = [
    (1, "row", 15),
    (6, "column", 500),
]


@pytest.fixture(scope="module")
def tpch_db():
    # a slightly larger instance than the figure benchmarks: the shell cost
    # of ``Engine.execute`` is a fixed few microseconds, so against the
    # sub-0.15ms Q6 of SF 0.001 the gate would mostly measure scheduler
    # noise rather than instrumentation regressions.
    return build_tpch_database(scale_factor=0.005)


def _interleaved_seconds(functions: list, samples: int) -> list[float]:
    """Median per-call time of each function, sampled in strict alternation.

    Alternating single calls shares thermal / frequency / scheduler drift
    across the contestants instead of letting it bias whichever variant
    happens to run during a slow phase, and the median discards preemption
    spikes -- together these resolve the few-microsecond shell cost that a
    best-of-timing-loops protocol buries in machine noise.
    """
    collected: list[list[float]] = [[] for _ in functions]
    for _ in range(samples):
        for index, function in enumerate(functions):
            started = time.perf_counter()
            function()
            collected[index].append(time.perf_counter() - started)
    return [statistics.median(timings) for timings in collected]


def test_disabled_tracing_overhead_is_bounded(tpch_db, benchmark, run_once):
    """``Engine.execute`` must cost within MAX_OVERHEAD of the bare plan."""
    entries = []
    failures = []
    for query_id, kind, samples in MATRIX:
        factory = RowEngine if kind == "row" else ColumnEngine
        # workers pinned to 1: the overhead gate times the serial hot path.
        engine = factory(tpch_db, options=EngineOptions(workers=1))
        plan = engine.prepare(QUERIES[query_id])
        engine.execute(plan)  # warm: kernels, columnar views, caches

        if (query_id, kind) == (6, "column"):
            run_once(benchmark, lambda: [engine.execute(plan)
                                         for _ in range(samples)])

        label = engine.label

        def seed_execute():
            # the pre-observability execute path: time the physical plan and
            # wrap it in a result -- no metrics context, phases or spans.
            started = time.perf_counter()
            columns, rows = engine._execute_plan(plan)
            elapsed = time.perf_counter() - started
            return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                               engine=label)

        bare, untraced, traced = _interleaved_seconds(
            [seed_execute,
             lambda: engine.execute(plan),
             lambda: engine.execute(plan, trace=True)],
            samples)

        overhead = (untraced - bare) / bare if bare else 0.0
        traced_overhead = (traced - bare) / bare if bare else 0.0
        entries.append({
            "query": f"tpch-q{query_id}",
            "engine": kind,
            "samples": samples,
            "baseline_seconds": bare,
            "untraced_seconds": untraced,
            "traced_seconds": traced,
            "untraced_overhead": overhead,
            "traced_overhead": traced_overhead,
        })
        print(f"Q{query_id} {kind}: baseline={bare * 1000:.3f}ms "
              f"untraced={untraced * 1000:.3f}ms ({overhead:+.1%}) "
              f"traced={traced * 1000:.3f}ms ({traced_overhead:+.1%})")
        if overhead > MAX_OVERHEAD:
            failures.append(f"Q{query_id}/{kind}: {overhead:.1%} > {MAX_OVERHEAD:.0%}")

    sample = ColumnEngine(tpch_db).execute("explain analyze " + QUERIES[6])
    artifact_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    (artifact_dir / "BENCH_observability.json").write_text(json.dumps({
        "max_overhead": MAX_OVERHEAD,
        "entries": entries,
    }, indent=2))
    (artifact_dir / "BENCH_observability_trace.json").write_text(
        json.dumps(sample.trace.to_dict(), indent=2))

    assert not failures, "; ".join(failures)
