"""Observability overhead benchmark: tracing must be free when it's off.

The metrics context and the ``trace is None`` checks ride on every execution,
so this benchmark gates their cost: the warm per-execution time of the full
``Engine.execute`` path (metrics context, phase timings, null-span checks,
result assembly) must stay within ``OBS_BENCH_MAX_OVERHEAD`` (default 5%) of
executing the bare physical plan on the paper's running examples -- TPC-H Q1
on the row engine and Q6 on the column engine.  The overhead of actually
*enabling* span collection is recorded informationally alongside.

A second gate covers the *platform* telemetry added on top of the engine:
the warm claim -> execute -> submit loop with full tracing (spans, structured
logs, flight recorder) must stay within ``PLATFORM_OBS_MAX_OVERHEAD``
(default 5%) of the same loop with ``TelemetryConfig.disabled()``.

A run writes ``BENCH_observability.json`` (engine + platform sections), a
sample EXPLAIN ANALYZE span tree (``BENCH_observability_trace.json``) and a
stitched end-to-end task timeline from a fault-forced retry
(``BENCH_task_timeline.json``) into ``BENCH_ARTIFACT_DIR`` or the current
directory, so CI archives a real cross-process trace next to the numbers.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.analytics import profiles_by_trace, stitch_timelines, timeline_report
from repro.driver import BatchRunner, DriverConfig, InProcessClient
from repro.engine import ColumnEngine, EngineOptions, RowEngine
from repro.engine.result import QueryResult
from repro.obs import JsonLogger, TelemetryConfig
from repro.platform import (
    FaultConfig,
    FaultInjector,
    FlakyEngine,
    PlatformService,
)
from repro.platform.models import Task
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database

#: committed ceiling on the relative overhead of the tracing-disabled path.
MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.05"))

#: committed ceiling on the relative overhead of full platform telemetry on
#: the warm claim -> execute -> submit loop.
PLATFORM_MAX_OVERHEAD = float(
    os.environ.get("PLATFORM_OBS_MAX_OVERHEAD", "0.05"))

#: (query id, engine kind, samples per contestant)
MATRIX = [
    (1, "row", 15),
    (6, "column", 500),
]


@pytest.fixture(scope="module")
def tpch_db():
    # a slightly larger instance than the figure benchmarks: the shell cost
    # of ``Engine.execute`` is a fixed few microseconds, so against the
    # sub-0.15ms Q6 of SF 0.001 the gate would mostly measure scheduler
    # noise rather than instrumentation regressions.
    return build_tpch_database(scale_factor=0.005)


def _interleaved_seconds(functions: list, samples: int) -> list[float]:
    """Median per-call time of each function, sampled in strict alternation.

    Alternating single calls shares thermal / frequency / scheduler drift
    across the contestants instead of letting it bias whichever variant
    happens to run during a slow phase, and the median discards preemption
    spikes -- together these resolve the few-microsecond shell cost that a
    best-of-timing-loops protocol buries in machine noise.
    """
    collected: list[list[float]] = [[] for _ in functions]
    for _ in range(samples):
        for index, function in enumerate(functions):
            started = time.perf_counter()
            function()
            collected[index].append(time.perf_counter() - started)
    return [statistics.median(timings) for timings in collected]


def test_disabled_tracing_overhead_is_bounded(tpch_db, benchmark, run_once):
    """``Engine.execute`` must cost within MAX_OVERHEAD of the bare plan."""
    entries = []
    failures = []
    for query_id, kind, samples in MATRIX:
        factory = RowEngine if kind == "row" else ColumnEngine
        # workers pinned to 1: the overhead gate times the serial hot path.
        engine = factory(tpch_db, options=EngineOptions(workers=1))
        plan = engine.prepare(QUERIES[query_id])
        engine.execute(plan)  # warm: kernels, columnar views, caches

        if (query_id, kind) == (6, "column"):
            run_once(benchmark, lambda: [engine.execute(plan)
                                         for _ in range(samples)])

        label = engine.label

        def seed_execute():
            # the pre-observability execute path: time the physical plan and
            # wrap it in a result -- no metrics context, phases or spans.
            started = time.perf_counter()
            columns, rows = engine._execute_plan(plan)
            elapsed = time.perf_counter() - started
            return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                               engine=label)

        bare, untraced, traced = _interleaved_seconds(
            [seed_execute,
             lambda: engine.execute(plan),
             lambda: engine.execute(plan, trace=True)],
            samples)

        overhead = (untraced - bare) / bare if bare else 0.0
        traced_overhead = (traced - bare) / bare if bare else 0.0
        entries.append({
            "query": f"tpch-q{query_id}",
            "engine": kind,
            "samples": samples,
            "baseline_seconds": bare,
            "untraced_seconds": untraced,
            "traced_seconds": traced,
            "untraced_overhead": overhead,
            "traced_overhead": traced_overhead,
        })
        print(f"Q{query_id} {kind}: baseline={bare * 1000:.3f}ms "
              f"untraced={untraced * 1000:.3f}ms ({overhead:+.1%}) "
              f"traced={traced * 1000:.3f}ms ({traced_overhead:+.1%})")
        if overhead > MAX_OVERHEAD:
            failures.append(f"Q{query_id}/{kind}: {overhead:.1%} > {MAX_OVERHEAD:.0%}")

    sample = ColumnEngine(tpch_db).execute("explain analyze " + QUERIES[6])
    artifact_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    _merge_artifact(artifact_dir / "BENCH_observability.json", {
        "max_overhead": MAX_OVERHEAD,
        "entries": entries,
    })
    (artifact_dir / "BENCH_observability_trace.json").write_text(
        json.dumps(sample.trace.to_dict(), indent=2))

    assert not failures, "; ".join(failures)


def _merge_artifact(path: Path, update: dict) -> None:
    """Read-modify-write one section of a shared JSON artifact."""
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    path.write_text(json.dumps(data, indent=2))


# ---------------------------------------------------------------------------
# platform telemetry overhead
# ---------------------------------------------------------------------------

#: tasks pre-enqueued per contestant: each sample consumes one task from
#: each queue, keeping the loop warm and the queues equal in depth.
PLATFORM_SAMPLES = 150

PLATFORM_SQL = QUERIES[6]


def _platform_loop(tpch_db, telemetry: TelemetryConfig, tasks: int):
    """A warm claim -> execute -> submit pipeline consuming one task per call."""
    service = PlatformService(
        telemetry=telemetry,
        logger=JsonLogger() if telemetry.enabled else None)
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("worker", "worker@example.org")
    service.register_dbms("columnstore", "1.0")
    service.register_host("bench")
    project = service.create_project(owner, "bench")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(owner, project, "bench-exp",
                                        PLATFORM_SQL, repeats=1,
                                        timeout_seconds=60.0)
    for index in range(tasks):
        service.store.insert("tasks", Task(
            experiment_id=experiment.id, query_sql=PLATFORM_SQL,
            query_key=f"bench-{index}", dbms_label="columnstore-1.0",
            host_name="bench", timeout_seconds=60.0))
    engine = ColumnEngine(tpch_db, options=EngineOptions(workers=1))
    engine.execute(engine.prepare(PLATFORM_SQL))  # warm kernels + plan cache
    # repeats=5 is the paper's default protocol ("each experiment is run
    # five times"); only the first repetition is traced (by design, see
    # ``measure_query``), so the loop also exercises the amortisation a
    # real driver run gets.
    config = DriverConfig(key=contributor.contributor_key,
                          dbms="columnstore-1.0", host="bench",
                          repeats=5, retries=0, batch_size=1,
                          trace_tasks=telemetry.enabled, telemetry=telemetry)
    runner = BatchRunner(
        client=InProcessClient(service, contributor.contributor_key),
        engine=engine, config=config,
        logger=service.log if telemetry.enabled else None)

    def step():
        assert runner.run_batch(experiment.id, count=1) == 1

    return step


def test_platform_telemetry_overhead_is_bounded(tpch_db):
    """Full tracing must cost < PLATFORM_OBS_MAX_OVERHEAD on the warm loop."""
    telemetry_on = _platform_loop(tpch_db, TelemetryConfig(),
                                  tasks=PLATFORM_SAMPLES + 1)
    telemetry_off = _platform_loop(tpch_db, TelemetryConfig.disabled(),
                                   tasks=PLATFORM_SAMPLES + 1)
    # one unmeasured warm-up lap each (store pages, logger stream, caches).
    telemetry_on()
    telemetry_off()
    on_samples: list[float] = []
    off_samples: list[float] = []
    for _ in range(PLATFORM_SAMPLES):
        started = time.perf_counter()
        telemetry_on()
        on_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        telemetry_off()
        off_samples.append(time.perf_counter() - started)
    enabled = statistics.median(on_samples)
    disabled = statistics.median(off_samples)
    # adjacent calls share scheduler/frequency conditions, so the median of
    # the *paired* differences isolates the telemetry cost from drift that
    # per-contestant medians taken over the whole run would fold in.
    marginal = statistics.median(on - off for on, off
                                 in zip(on_samples, off_samples))
    overhead = marginal / disabled if disabled else 0.0
    print(f"platform loop: telemetry-off={disabled * 1000:.3f}ms "
          f"telemetry-on={enabled * 1000:.3f}ms "
          f"paired marginal={marginal * 1000:.3f}ms ({overhead:+.1%})")

    artifact_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    _merge_artifact(artifact_dir / "BENCH_observability.json", {
        "platform": {
            "max_overhead": PLATFORM_MAX_OVERHEAD,
            "samples": PLATFORM_SAMPLES,
            "telemetry_off_seconds": disabled,
            "telemetry_on_seconds": enabled,
            "overhead": overhead,
        },
    })
    assert overhead <= PLATFORM_MAX_OVERHEAD, \
        f"platform telemetry overhead {overhead:.1%} > {PLATFORM_MAX_OVERHEAD:.0%}"


def test_task_timeline_artifact(tpch_db):
    """Emit a stitched end-to-end timeline crossing a fault-injected retry."""
    telemetry = TelemetryConfig()
    service = PlatformService(telemetry=telemetry, logger=JsonLogger())
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("worker", "worker@example.org")
    service.register_dbms("columnstore", "1.0")
    service.register_host("bench")
    project = service.create_project(owner, "timeline")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(owner, project, "timeline-exp",
                                        PLATFORM_SQL, repeats=1,
                                        timeout_seconds=60.0)
    service.store.insert("tasks", Task(
        experiment_id=experiment.id, query_sql=PLATFORM_SQL,
        query_key="timeline-0", dbms_label="columnstore-1.0",
        host_name="bench", timeout_seconds=60.0))
    engine = ColumnEngine(tpch_db, options=EngineOptions(workers=1))
    config = DriverConfig(key=contributor.contributor_key,
                          dbms="columnstore-1.0", host="bench",
                          repeats=1, retries=0, batch_size=1, trace_tasks=True,
                          telemetry=telemetry)
    client = InProcessClient(service, contributor.contributor_key)
    # attempt 1 fails via an injected engine fault, attempt 2 succeeds: the
    # archived timeline shows a retry crossing under a single trace id.
    flaky = FlakyEngine(engine, FaultInjector(FaultConfig(fail_task=1.0), seed=9))
    assert BatchRunner(client=client, engine=flaky,
                       config=config).run_batch(experiment.id, count=1) == 1
    assert BatchRunner(client=client, engine=engine,
                       config=config).run_batch(experiment.id, count=1) == 1

    results = service.store.results(experiment.id)
    timelines = stitch_timelines(tasks=service.store.tasks(experiment.id),
                                 results=results,
                                 span_sources=[service.spans],
                                 profiles=profiles_by_trace(results))
    assert len(timelines) == 1
    assert timelines[0].attempts == 2 and timelines[0].outcome == "done"
    artifact_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    (artifact_dir / "BENCH_task_timeline.json").write_text(
        json.dumps(timeline_report(timelines), indent=2))
