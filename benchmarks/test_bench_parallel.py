"""Morsel-parallel execution benchmark and CI perf-regression gate.

Times TPC-H Q1 (aggregation-heavy: per-worker partial states merged on the
coordinator) and Q6 (scan-dominated: zone-map refutation plus predicate
kernels per morsel) on the column engine, serial versus
``PARALLEL_BENCH_WORKERS`` morsel workers, over a warm prepared plan.

The gate is two-sided and adapts to the machine:

* the *best* gated speedup must reach ``PARALLEL_BENCH_MIN_SPEEDUP``
  (default 1.5x on boxes with at least four CPUs; 0.5x on smaller machines,
  where the workers share a core or two and a genuine speedup is physically
  unavailable -- CI exports ``PARALLEL_BENCH_MIN_SPEEDUP=1.5`` explicitly
  on its 4-vCPU runners),
* *every* gated query must stay above the catastrophic-regression floor
  ``PARALLEL_BENCH_FLOOR`` (default 0.25x): short scan-bound queries pay
  thread-dispatch overhead that one core cannot recoup, but parallel
  execution must never be arbitrarily slower than serial.

``PARALLEL_BENCH_SCALE`` sizes the dataset.

Every run also cross-checks serial and parallel results for equality --
the speedup is worthless if the answers drift -- and writes
``BENCH_parallel.json`` (into ``BENCH_ARTIFACT_DIR`` or the current
directory) so CI can track the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import ColumnEngine, EngineOptions
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database

SCALE = float(os.environ.get("PARALLEL_BENCH_SCALE", "0.02"))
WORKERS = int(os.environ.get("PARALLEL_BENCH_WORKERS", "4"))


def _default_min_speedup() -> float:
    return 1.5 if (os.cpu_count() or 1) >= 4 else 0.5


MIN_SPEEDUP = float(os.environ.get("PARALLEL_BENCH_MIN_SPEEDUP",
                                   str(_default_min_speedup())))
FLOOR = float(os.environ.get("PARALLEL_BENCH_FLOOR", "0.25"))

#: (query id, repetitions per timing loop, gated?)
MATRIX = [
    (1, 8, True),
    (6, 20, True),
]


@pytest.fixture(scope="module")
def tpch_db():
    return build_tpch_database(scale_factor=SCALE)


def _engine(database, workers: int) -> ColumnEngine:
    return ColumnEngine(database, options=EngineOptions(workers=workers))


def _warm_seconds(engine, sql: str, repetitions: int, rounds: int = 3) -> float:
    plan = engine.prepare(sql)
    engine.execute(plan)  # warm: kernels, columnar views, pool threads
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            engine.execute(plan)
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def _rows_match(serial_rows, parallel_rows) -> bool:
    if len(serial_rows) != len(parallel_rows):
        return False
    for expected, got in zip(serial_rows, parallel_rows):
        for want, have in zip(expected, got):
            if isinstance(want, float) and isinstance(have, float):
                if have != pytest.approx(want, rel=1e-9, abs=1e-12):
                    return False
            elif have != want:
                return False
    return True


def test_morsel_parallel_speedup(tpch_db, benchmark, run_once):
    """Parallel execution must clear the machine-appropriate speedup gate
    without changing a single answer."""
    entries = []
    failures = []
    for query_id, repetitions, gated in MATRIX:
        sql = QUERIES[query_id]
        serial_engine = _engine(tpch_db, workers=1)
        parallel_engine = _engine(tpch_db, workers=WORKERS)

        serial_result = serial_engine.execute(sql)
        parallel_result = parallel_engine.execute(sql)
        assert parallel_result.columns == serial_result.columns
        assert _rows_match(serial_result.rows, parallel_result.rows), \
            f"Q{query_id}: parallel execution changed the result"

        serial = _warm_seconds(serial_engine, sql, repetitions)
        if query_id == 6:
            plan = parallel_engine.prepare(sql)
            run_once(benchmark, lambda: [parallel_engine.execute(plan)
                                         for _ in range(repetitions)])
        parallel = _warm_seconds(parallel_engine, sql, repetitions)
        speedup = serial / parallel if parallel else float("inf")
        entries.append({
            "query": f"tpch-q{query_id}",
            "workers": WORKERS,
            "repetitions": repetitions,
            "serial_seconds": serial,
            "parallel_seconds": parallel,
            "speedup": speedup,
            "gated": gated,
        })
        print(f"Q{query_id}: serial={serial * 1000:.3f}ms "
              f"parallel[{WORKERS}]={parallel * 1000:.3f}ms "
              f"speedup={speedup:.2f}x")
        if gated and speedup < FLOOR:
            failures.append(f"Q{query_id}: {speedup:.2f}x is below the "
                            f"catastrophic-regression floor of {FLOOR}x")

    best = max((entry["speedup"] for entry in entries if entry["gated"]),
               default=0.0)
    if best < MIN_SPEEDUP:
        failures.append(f"best gated speedup {best:.2f}x < {MIN_SPEEDUP}x")

    artifact = {
        "scale_factor": SCALE,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "min_speedup": MIN_SPEEDUP,
        "floor": FLOOR,
        "entries": entries,
    }
    target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_parallel.json"
    target.write_text(json.dumps(artifact, indent=2))

    assert not failures, "; ".join(failures)
