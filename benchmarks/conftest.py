"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` file regenerates one table or figure of the paper; the
fixtures here provide the measured demo run (pool + observations on both
engines) that the figure benchmarks share, so the expensive part happens once
per session.
"""

from __future__ import annotations

import pytest

from repro.workflow import run_demo_scenario


@pytest.fixture(scope="session")
def demo():
    """One measured demo run (TPC-H Q1 variants on both engines)."""
    return run_demo_scenario(scale_factor=0.001, pool_size=12, repeats=2, seed=19)


@pytest.fixture()
def run_once():
    """Helper fixture: run a callable exactly once under pytest-benchmark timing."""

    def runner(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
