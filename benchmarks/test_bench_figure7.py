"""Figure 7: experiment history (execution times, morph edges, error nodes)."""

from repro.analytics import experiment_history


def test_figure7_experiment_history(benchmark, run_once, demo):
    system = demo.engines[0].label
    history = run_once(benchmark, experiment_history, demo.pool, system)
    print(f"\n=== Figure 7: experiment history on {system} ===")
    for node in history.nodes:
        elapsed = f"{node.elapsed:.4f}s" if node.elapsed is not None else "   -   "
        print(f"  [{node.sequence:3d}] {elapsed} size={node.size:2d} origin={node.origin:7s} "
              f"color={node.color:7s} error={node.error}")
    for edge in history.edges:
        print(f"  edge {edge.parent_sequence:3d} -> {edge.child_sequence:3d} "
              f"({edge.strategy}, {edge.color})")
    assert len(history.nodes) == len(demo.pool)
    assert len(history.measured_nodes()) >= len(demo.pool) - len(history.error_nodes())
    assert history.edges, "morphing must contribute edges to the history"
    colors = {edge.color for edge in history.edges}
    assert colors <= {"purple", "green", "blue"}
