"""Figure 4: query differentials (syntactic diff + per-system performance)."""

from repro.analytics import differential


def test_figure4_query_differentials(benchmark, run_once, demo):
    pool = demo.pool
    ranked = pool.discriminative(demo.engines[0].label, demo.engines[1].label, top=2)
    assert ranked, "expected measured queries to rank"
    left = ranked[0][0]
    right = pool.entries()[0] if pool.entries()[0] is not left else pool.entries()[1]
    diff = run_once(benchmark, differential, pool, left, right)
    print("\n=== Figure 4: query differential ===")
    for line in diff.diff_lines:
        print(f"  {line}")
    print(f"  terms only in A: {diff.left_only_terms}")
    print(f"  terms only in B: {diff.right_only_terms}")
    for system, left_time, right_time, ratio in diff.summary_rows():
        print(f"  {system:<20} A={left_time} B={right_time} ratio={ratio}")
    assert diff.diff_lines
    assert diff.timings
