#!/usr/bin/env python3
"""A shared performance project, end to end (Sections 4 and 5 of the paper).

The script plays three roles:

* the **project owner** registers the DBMS/host catalogs, creates a private
  project, converts a baseline query into a grammar, grows the query pool and
  queues it,
* a **contributor** runs the queued queries with the experiment driver over
  HTTP against the platform server (exactly the ``sqalpel.py`` loop) and
  reports wall-clock times plus load averages,
* a **reader** finally inspects the shared results: queue status, CSV export
  and the experiment history.

Run with ``python examples/shared_project.py``.
"""

from repro.analytics import experiment_history, speedup_report
from repro.driver import DriverConfig, ExperimentDriver, HTTPClient
from repro.platform import PlatformServer, PlatformService, Visibility
from repro.pool import Morpher
from repro.tpch import QUERIES
from repro.workflow import build_engines, build_tpch_database


def main() -> None:
    service = PlatformService()

    # --- the owner sets the project up -------------------------------------
    owner = service.register_user("mk", "owner@example.org")
    contributor = service.register_user("pk", "contributor@example.org")
    host = service.register_host("laptop", cpu="x86-64", memory_gb=16, os="linux")
    database = build_tpch_database(scale_factor=0.001)
    row_engine, column_engine = build_engines(database)
    for engine in (row_engine, column_engine):
        service.register_dbms(engine.name, engine.version, dialect=engine.name)

    project = service.create_project(owner, "tpch-q6-private",
                                     synopsis="Selective-scan behaviour of Q6 variants",
                                     visibility=Visibility.PRIVATE,
                                     attribution="TPC-H")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(owner, project, "q6", QUERIES[6],
                                        repeats=3, timeout_seconds=60)

    pool = service.build_pool(experiment, seed=1)
    pool.seed_baseline()
    pool.seed_random(3)
    Morpher(pool, seed=1).grow_to(8)
    for engine in (row_engine, column_engine):
        service.enqueue_pool(owner, experiment, pool, dbms_label=engine.label,
                             host_name=host.name)
    print(f"project '{project.name}' ({project.visibility.value}), "
          f"pool of {len(pool)} queries queued for two systems")

    # --- a contributor drains the queue over HTTP ---------------------------
    with PlatformServer(service) as server:
        for engine in (row_engine, column_engine):
            config = DriverConfig(key=contributor.contributor_key, dbms=engine.label,
                                  host=host.name, repeats=3, timeout=60,
                                  server=server.url)
            driver = ExperimentDriver(client=HTTPClient(server.url,
                                                        contributor.contributor_key),
                                      engine=engine, config=config)
            executed = driver.run_all(experiment.id)
            print(f"contributor executed {executed} tasks on {engine.label}")

    # --- everyone with access inspects the shared results -------------------
    print("queue status:", service.queue_status(experiment))
    csv_export = service.export_results_csv(experiment, viewer=owner)
    print(f"CSV export: {len(csv_export.splitlines()) - 1} result rows")

    for record in service.results(experiment, viewer=contributor):
        pool_entry = next((entry for entry in pool.entries()
                           if entry.sql == record.query_sql), None)
        if pool_entry is not None:
            pool.record(pool_entry, record.dbms_label, record.best or 0.0,
                        error=record.error, repeats=record.times)

    report = speedup_report(pool, baseline=column_engine.label, comparison=row_engine.label)
    if report.points:
        low, high = report.spread()
        print(f"row-store slowdown relative to the column store: "
              f"{low:.1f}x .. {high:.1f}x over {len(report.points)} variants")
    history = experiment_history(pool, system=row_engine.label)
    print(f"experiment history: {len(history.nodes)} nodes, {len(history.edges)} morph edges, "
          f"{len(history.error_nodes())} errors")


if __name__ == "__main__":
    main()
