#!/usr/bin/env python3
"""Quickstart: from a baseline SQL query to discriminative queries in ~60 lines.

The script walks the core SQALPEL loop on the paper's Figure 1 example and on
TPC-H Q1:

1. turn a baseline query into a query-space grammar,
2. inspect the space (tags / templates / #queries),
3. build a query pool and grow it with the alter/expand/prune walk,
4. run every pool query on the two built-in engines,
5. print the most discriminative queries.

Run with ``python examples/quickstart.py``.
"""

from repro.core import parse_grammar, serialize_grammar, space_report
from repro.core.dsl import FIGURE1_GRAMMAR
from repro.driver import measure_query
from repro.pool import Morpher, QueryPool
from repro.reports import table1_text
from repro.sqlparser import extract_grammar
from repro.tpch import QUERIES
from repro.workflow import build_engines, build_tpch_database


def figure1_example() -> None:
    print("=" * 72)
    print("Figure 1 grammar (nation example)")
    print("=" * 72)
    grammar = parse_grammar(FIGURE1_GRAMMAR, name="figure1")
    report = space_report(grammar)
    print(serialize_grammar(grammar))
    print(f"tags={report.tags} templates={report.templates} queries={report.space}\n")


def tpch_q1_example() -> None:
    print("=" * 72)
    print("TPC-H Q1: grammar extraction, pool morphing, discriminative queries")
    print("=" * 72)
    grammar = extract_grammar(QUERIES[1])
    report = space_report(grammar)
    print(f"extracted grammar: {len(grammar)} rules, tags={report.tags}, "
          f"templates={report.template_label()}, space={report.space_label()}")

    database = build_tpch_database(scale_factor=0.001)
    row_engine, column_engine = build_engines(database)
    print("database storage:")
    for table, entry in database.size_summary().items():
        print(f"  {table:10s} {entry['rows']:6d} rows, {entry['chunks']:2d} chunks, "
              f"{entry['encoded_bytes'] / 1024:7.1f} KiB encoded "
              f"({entry['compression_ratio']:.2f}x vs raw)")

    pool = QueryPool(grammar, seed=42)
    pool.seed_baseline()
    pool.seed_random(3)
    Morpher(pool, seed=42).grow_to(10)
    print(f"pool: {len(pool)} queries")

    for engine in (row_engine, column_engine):
        for entry in pool.entries():
            outcome = measure_query(engine, entry.sql, repeats=2)
            pool.record(entry, engine.label, outcome.best or 0.0, error=outcome.error,
                        repeats=outcome.times)

    print("\nmost discriminative queries (rowstore vs columnstore):")
    for entry, log_ratio in pool.discriminative(row_engine.label, column_engine.label, top=5):
        ratio = entry.best_time(row_engine.label) / entry.best_time(column_engine.label)
        print(f"  {ratio:6.1f}x slower on the row store | size={entry.query.size():2d} | "
              f"{entry.sql[:80]}")


def table1_example() -> None:
    print("\n" + "=" * 72)
    print("Table 1: how few TPC results are actually published")
    print("=" * 72)
    print(table1_text())


if __name__ == "__main__":
    figure1_example()
    tpch_q1_example()
    table1_example()
