#!/usr/bin/env python3
"""Regression hunting between two versions of the same engine.

The paper motivates discriminative benchmarking with exactly this scenario:
"consider two systems A and B, which may be [...] merely two versions of the
same system.  System B may be considered an overall better system [...] This
does not mean that no queries can be handled more efficiently by A."

Here version B of the column engine enables the overflow-guarded expression
evaluation (the MonetDB ``sum_charge`` anecdote): it is the "safer" build, but
expression-heavy variants pay for it.  The guided walk finds the variants
where the regression is largest, and the dominant-component analysis points
at the responsible lexical term.

Run with ``python examples/regression_hunt.py``.
"""

from repro.analytics import component_report
from repro.driver import measure_query
from repro.engine import ColumnEngine, EngineOptions
from repro.pool import Morpher, QueryPool
from repro.sqlparser import extract_grammar
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database


def main() -> None:
    database = build_tpch_database(scale_factor=0.002)
    version_a = ColumnEngine(database, version="2.0")
    version_b = ColumnEngine(database, version="2.1-guarded",
                             options=EngineOptions(overflow_guard=True))
    print(f"comparing {version_a.label} against {version_b.label}")

    grammar = extract_grammar(QUERIES[1])
    pool = QueryPool(grammar, seed=9)
    pool.seed_baseline()
    pool.seed_random(4)
    Morpher(pool, seed=9).grow_to(14)
    print(f"pool holds {len(pool)} Q1 variants")

    for engine in (version_a, version_b):
        for entry in pool.entries():
            outcome = measure_query(engine, entry.sql, repeats=3)
            pool.record(entry, engine.label, outcome.best or 0.0, error=outcome.error,
                        repeats=outcome.times)

    print("\nvariants where the new version regresses the most:")
    for entry, log_ratio in pool.discriminative(version_b.label, version_a.label, top=5):
        time_a = entry.best_time(version_a.label)
        time_b = entry.best_time(version_b.label)
        print(f"  {time_b / time_a:5.2f}x slower | {entry.sql[:90]}")

    report = component_report(pool, system=version_b.label)
    print("\nmost expensive lexical terms on the new version:")
    for contribution in report.dominant(top=3):
        print(f"  {contribution.term[:70]:<70} marginal={contribution.marginal_cost:+.4f}s")


if __name__ == "__main__":
    main()
