"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. in offline environments where ``pip install -e .`` cannot
resolve build requirements); an installed package takes precedence.

Also resets the engine's process-wide instrumentation counters and the
validity-kernel memo caches before every test (both the ``tests/`` and
``benchmarks/`` suites), so materialisation and chunk-skip assertions can
never bleed between tests and the differential fuzzer's shrinking stays
deterministic: identity-keyed decode memos could otherwise survive an id
reuse across test boundaries and make a replayed query take a different
(cached) path than its first run.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(autouse=True)
def _reset_instrumentation_counters():
    """Zero counters and drop the validity-kernel memo caches per test."""
    from repro.engine.mask import reset_mask_caches
    from repro.engine.storage import ScanStats
    from repro.engine.vector import ColFrame

    ColFrame.materialisations = 0
    ScanStats.reset()
    reset_mask_caches()
    yield
