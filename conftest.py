"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. in offline environments where ``pip install -e .`` cannot
resolve build requirements); an installed package takes precedence.

Also drops the validity-kernel memo caches before every test (both the
``tests/`` and ``benchmarks/`` suites) so the differential fuzzer's
shrinking stays deterministic: identity-keyed decode memos could otherwise
survive an id reuse across test boundaries and make a replayed query take a
different (cached) path than its first run.  Instrumentation counters need
no reset any more -- they live on the per-query metrics context attached to
each ``QueryResult`` (see :mod:`repro.obs`), not on process-global state.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(autouse=True)
def _reset_memo_caches():
    """Drop the validity-kernel memo caches per test."""
    from repro.engine.mask import reset_mask_caches

    reset_mask_caches()
    yield
